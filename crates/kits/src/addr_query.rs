//! The unified address-query builder and its shard-parallel engine.
//!
//! `AddrQuery`, `AddrQueryRange`, and `AddrQueryAll` (Table 1) are the same
//! traversal with three version filters; this module collapses them into one
//! builder so there is a single dispatch point for the parallel read path.
//! The engine fans the clamped LPA span across the device's AMT shards
//! (`lpa % shards`) on scoped threads — each worker holds only an
//! [`SsdReadView`], so lookups ride the per-shard read locks without `&mut`
//! access to the device — and merges per-shard hits and [`QueryCost`]s
//! deterministically: hits by a stable sort on LPA (reproducing the serial
//! scan order exactly), costs in shard-index order.

use almanac_core::{Result, SsdReadView, TimeSsd, VersionInfo};
use almanac_flash::{Lpa, Nanos};

use crate::cost::QueryCost;
use crate::kits::QueryHit;

/// Which versions of each LPA the query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The newest version written at or before `t` (`AddrQuery`).
    AsOf(Nanos),
    /// Every version written inside `[t1, t2]` (`AddrQueryRange`).
    Range(Nanos, Nanos),
    /// Every retained version (`AddrQueryAll`).
    All,
}

/// Charges the retrieval cost of one version: a flash read on its chip,
/// plus (for deltas) the reference read and the decompression CPU time —
/// the overhead Figure 10 attributes to TimeSSD.
pub(crate) fn charge_version(ssd: &TimeSsd, v: &VersionInfo, cost: &mut QueryCost) {
    let lat = ssd.config().latency;
    if let Some(chip) = v.chip {
        cost.charge_read(chip, lat.read_total());
    }
    if !matches!(v.location, almanac_core::VersionLocation::DataPage(_)) {
        if let Some(chip) = v.chip {
            cost.charge_read(chip, lat.read_total());
        }
        cost.charge_cpu(lat.decompress_ns);
        cost.note_decompression();
    }
}

/// Charges and materialises one version.
pub(crate) fn fetch(ssd: &TimeSsd, v: &VersionInfo, cost: &mut QueryCost) -> Result<QueryHit> {
    charge_version(ssd, v, cost);
    let data = ssd.version_content(v.lpa, v.timestamp)?;
    Ok(QueryHit {
        lpa: v.lpa,
        timestamp: v.timestamp,
        data,
    })
}

/// Result of one [`AddrQuery`] run.
#[derive(Debug, Clone)]
pub struct AddrQueryOutcome {
    /// Matching versions in serial scan order: ascending LPA, newest version
    /// first within each LPA — byte-identical at every shard and thread
    /// count.
    pub hits: Vec<QueryHit>,
    /// Total retrieval cost, merged across shards in shard-index order;
    /// equal to the cost the serial scan would have accumulated.
    pub cost: QueryCost,
    /// Per-shard retrieval costs (index = AMT shard), for the sharded
    /// scheduling model of [`AddrQueryOutcome::makespan`].
    pub shard_costs: Vec<QueryCost>,
}

impl AddrQueryOutcome {
    /// Virtual completion time of this query under the *sharded* schedule:
    /// shard `s` is handled by worker `s % threads` (a shard's lookups
    /// serialize on its lock and its chain walks), each worker runs its
    /// shards back to back, workers overlap. With one shard every thread
    /// count degenerates to the serial makespan — which is exactly the
    /// bottleneck the sharded AMT removes; the `shardscale` bench figure
    /// plots this.
    pub fn makespan(&self, threads: u32) -> Nanos {
        let threads = threads.max(1) as usize;
        let mut workers = vec![0u64; threads];
        for (s, c) in self.shard_costs.iter().enumerate() {
            workers[s % threads] += c.makespan(1);
        }
        workers.into_iter().max().unwrap_or(0)
    }
}

/// Builder for the Table-1 address queries, generalising `addr_query`,
/// `addr_query_range`, and `addr_query_all` behind one dispatch point.
///
/// Defaults to all retained versions ([`Self::all_versions`]); narrow with
/// [`Self::as_of`] or [`Self::range`], set the worker count with
/// [`Self::threads`], then [`Self::run`].
///
/// # Examples
///
/// ```
/// use almanac_core::{SsdConfig, SsdDevice, TimeSsd};
/// use almanac_flash::{Geometry, Lpa, PageData, SEC_NS};
/// use almanac_kits::AddrQuery;
///
/// let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::small_test()));
/// ssd.write(Lpa(0), PageData::bytes(b"old".to_vec()), SEC_NS).unwrap();
/// ssd.write(Lpa(0), PageData::bytes(b"new".to_vec()), 5 * SEC_NS).unwrap();
///
/// // The `&self` query path: no exclusive device access needed.
/// let out = AddrQuery::new(ssd.read_view(), Lpa(0), 1)
///     .as_of(3 * SEC_NS)
///     .run()
///     .unwrap();
/// assert_eq!(out.hits[0].data, PageData::bytes(b"old".to_vec()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddrQuery<'v> {
    view: SsdReadView<'v>,
    addr: Lpa,
    cnt: u64,
    mode: Mode,
    threads: u32,
}

/// One shard's scan result: its hits plus the cost of retrieving them.
type ShardScan = Result<(Vec<QueryHit>, QueryCost)>;

impl<'v> AddrQuery<'v> {
    /// Starts a query over `cnt` LPAs from `addr` on the given read view.
    pub fn new(view: SsdReadView<'v>, addr: Lpa, cnt: u64) -> Self {
        AddrQuery {
            view,
            addr,
            cnt,
            mode: Mode::All,
            threads: 1,
        }
    }

    /// Returns each LPA's state as of time `t` (`AddrQuery` of Table 1).
    pub fn as_of(mut self, t: Nanos) -> Self {
        self.mode = Mode::AsOf(t);
        self
    }

    /// Returns every version written inside `[t1, t2]`, newest first per
    /// LPA (`AddrQueryRange`).
    pub fn range(mut self, t1: Nanos, t2: Nanos) -> Self {
        self.mode = Mode::Range(t1, t2);
        self
    }

    /// Returns every retained version (`AddrQueryAll`, the default).
    pub fn all_versions(mut self) -> Self {
        self.mode = Mode::All;
        self
    }

    /// Sets the host worker count (clamped to at least 1). Workers beyond
    /// the device's shard count idle — a shard's lookups serialize on its
    /// lock.
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The LPAs this query actually addresses. The span is clamped to the
    /// exported address space *before* any shard assignment: `addr + cnt`
    /// saturates instead of wrapping, so a request straddling `u64::MAX`
    /// cannot smuggle wrapped LPAs into the wrong shard (`lpa % shards` is
    /// only ever taken on in-range addresses) or scan past
    /// `exported_pages()`.
    fn span(&self) -> std::ops::Range<u64> {
        let exported = self.view.exported_pages();
        let start = self.addr.0.min(exported);
        let end = self
            .addr
            .0
            .checked_add(self.cnt)
            .map_or(exported, |e| e.min(exported));
        start..end
    }

    /// Scans the LPAs of one shard (in ascending order) into that shard's
    /// own hit list and cost.
    fn scan_shard(&self, shard: u64) -> ShardScan {
        let ssd = self.view.device();
        let nshards = u64::from(self.view.amt_shards());
        let span = self.span();
        let mut cost = QueryCost::new(ssd.geometry().total_chips() as u32);
        let mut hits = Vec::new();
        // First LPA >= span.start owned by this shard.
        let offset = (shard + nshards - span.start % nshards) % nshards;
        let Some(first) = span.start.checked_add(offset) else {
            return Ok((hits, cost));
        };
        let mut lpa = first;
        while lpa < span.end {
            match self.mode {
                Mode::AsOf(t) => {
                    if let Some(v) = ssd.version_as_of(Lpa(lpa), t) {
                        hits.push(fetch(ssd, &v, &mut cost)?);
                    }
                }
                Mode::Range(t1, t2) => {
                    for v in ssd.versions_in(Lpa(lpa), t1, t2) {
                        hits.push(fetch(ssd, &v, &mut cost)?);
                    }
                }
                Mode::All => {
                    for v in ssd.version_chain(Lpa(lpa)) {
                        hits.push(fetch(ssd, &v, &mut cost)?);
                    }
                }
            }
            lpa += nshards;
        }
        Ok((hits, cost))
    }

    /// Runs the query, fanning the shards across scoped worker threads.
    ///
    /// Determinism: shard `s` is scanned by worker `s % threads`; each
    /// worker's shards come back in shard order, hits are stable-sorted by
    /// LPA (restoring the exact serial scan order, since per-LPA version
    /// order is already newest-first within a shard), and costs merge in
    /// shard-index order. Errors are reported from the lowest failing shard.
    pub fn run(&self) -> Result<AddrQueryOutcome> {
        let nshards = self.view.amt_shards().max(1);
        let workers = self.threads.min(nshards).max(1);

        let shard_results: Vec<ShardScan> = if workers <= 1 {
            (0..u64::from(nshards))
                .map(|s| self.scan_shard(s))
                .collect()
        } else {
            // Worker w scans shards w, w+workers, w+2*workers, ...
            let mut per_worker: Vec<Vec<(u64, ShardScan)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            (u64::from(w)..u64::from(nshards))
                                .step_by(workers as usize)
                                .map(|s| (s, self.scan_shard(s)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect()
            });
            let mut flat: Vec<(u64, ShardScan)> = per_worker.drain(..).flatten().collect();
            flat.sort_by_key(|(s, _)| *s);
            flat.into_iter().map(|(_, r)| r).collect()
        };

        let chips = self.view.geometry().total_chips() as u32;
        let mut cost = QueryCost::new(chips);
        let mut shard_costs = Vec::with_capacity(nshards as usize);
        let mut hits = Vec::new();
        for result in shard_results {
            let (h, c) = result?;
            cost.merge(&c);
            shard_costs.push(c);
            hits.extend(h);
        }
        hits.sort_by_key(|h| h.lpa);
        Ok(AddrQueryOutcome {
            hits,
            cost,
            shard_costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almanac_core::{SsdConfig, SsdDevice};
    use almanac_flash::{Geometry, PageData, SEC_NS};

    fn device(shards: u32) -> TimeSsd {
        let cfg = SsdConfig::new(Geometry::medium_test()).with_amt_shards(shards);
        let mut ssd = TimeSsd::new(cfg);
        for round in 1..=3u64 {
            for lpa in 0..10u64 {
                ssd.write(
                    Lpa(lpa),
                    PageData::Synthetic {
                        seed: lpa,
                        version: round,
                    },
                    round * SEC_NS + lpa * 1000,
                )
                .unwrap();
            }
        }
        ssd
    }

    #[test]
    fn results_are_identical_across_shard_and_thread_counts() {
        let baseline = {
            let ssd = device(1);
            AddrQuery::new(ssd.read_view(), Lpa(0), 10).run().unwrap()
        };
        assert_eq!(baseline.hits.len(), 30);
        for shards in [2u32, 4, 8] {
            let ssd = device(shards);
            for threads in [1u32, 2, 4, 8] {
                let out = AddrQuery::new(ssd.read_view(), Lpa(0), 10)
                    .threads(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    baseline.hits, out.hits,
                    "{shards} shards / {threads} threads"
                );
                assert_eq!(
                    baseline.cost, out.cost,
                    "{shards} shards / {threads} threads"
                );
            }
        }
    }

    #[test]
    fn hits_keep_the_serial_scan_order() {
        let ssd = device(4);
        let out = AddrQuery::new(ssd.read_view(), Lpa(0), 10)
            .threads(4)
            .run()
            .unwrap();
        // Ascending LPA, newest-first within each LPA.
        for w in out.hits.windows(2) {
            assert!(
                w[0].lpa < w[1].lpa || (w[0].lpa == w[1].lpa && w[0].timestamp > w[1].timestamp)
            );
        }
    }

    #[test]
    fn modes_filter_versions() {
        let ssd = device(4);
        let view = ssd.read_view();
        let as_of = AddrQuery::new(view, Lpa(0), 10)
            .as_of(2 * SEC_NS + SEC_NS / 2)
            .run()
            .unwrap();
        assert_eq!(as_of.hits.len(), 10);
        assert!(as_of.hits.iter().all(|h| h.data
            == PageData::Synthetic {
                seed: h.lpa.0,
                version: 2
            }));
        let range = AddrQuery::new(view, Lpa(0), 10)
            .range(2 * SEC_NS, 4 * SEC_NS)
            .run()
            .unwrap();
        assert_eq!(range.hits.len(), 20); // versions 2 and 3
    }

    #[test]
    fn span_straddling_u64_max_clamps_before_sharding() {
        // Regression (mirrors the PR 9 replay overflow fix): the span is
        // clamped to the exported range before `lpa % shards` is computed,
        // so a start near u64::MAX neither wraps into a bogus shard/local
        // index nor panics in debug builds — on any shard count.
        for shards in [1u32, 3, 4, 8] {
            let ssd = device(shards);
            let view = ssd.read_view();
            let out = AddrQuery::new(view, Lpa(u64::MAX - 1), 8).run().unwrap();
            assert!(out.hits.is_empty(), "{shards} shards");
            let out = AddrQuery::new(view, Lpa(u64::MAX - 1), 8)
                .threads(8)
                .range(0, u64::MAX)
                .run()
                .unwrap();
            assert!(out.hits.is_empty(), "{shards} shards, ranged");
            // A count that saturates: the in-range tail still answers, and
            // every shard sees only clamped LPAs.
            let out = AddrQuery::new(view, Lpa(2), u64::MAX).run().unwrap();
            assert_eq!(out.hits.len(), 24, "{shards} shards"); // LPAs 2..10
        }
    }

    #[test]
    fn sharded_makespan_scales_with_shards_and_threads() {
        let serial = {
            let ssd = device(1);
            AddrQuery::new(ssd.read_view(), Lpa(0), 10).run().unwrap()
        };
        let sharded = {
            let ssd = device(4);
            AddrQuery::new(ssd.read_view(), Lpa(0), 10)
                .threads(4)
                .run()
                .unwrap()
        };
        // One shard: threads cannot help (the shard serializes).
        assert_eq!(serial.makespan(1), serial.makespan(4));
        // Four shards, four threads: at least the 1.5x the paper-style
        // scaling figure claims, on this uniform span.
        assert!(sharded.makespan(4) * 3 <= sharded.makespan(1) * 2);
        // Total work is conserved: all-shards-on-one-worker equals serial.
        assert_eq!(sharded.makespan(1), serial.makespan(1));
    }

    #[test]
    fn empty_span_yields_empty_outcome() {
        let ssd = device(4);
        let out = AddrQuery::new(ssd.read_view(), Lpa(5), 0).run().unwrap();
        assert!(out.hits.is_empty());
        assert_eq!(out.cost.flash_reads, 0);
        assert_eq!(out.makespan(4), 0);
    }
}
