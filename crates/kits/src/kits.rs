//! The Table-1 query and rollback API.

use almanac_core::{AlmanacError, Result, SsdDevice, SsdReadOps, TimeSsd};
use almanac_flash::{Lpa, Nanos, PageData};

use crate::addr_query::{fetch, AddrQuery};
use crate::cost::QueryCost;

/// One version returned by an address-based query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// The logical page.
    pub lpa: Lpa,
    /// When this version was written.
    pub timestamp: Nanos,
    /// The reconstructed content.
    pub data: PageData,
}

/// One LPA returned by a time-based query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeQueryHit {
    /// The logical page.
    pub lpa: Lpa,
    /// Write timestamps inside the queried window, newest first.
    pub timestamps: Vec<Nanos>,
}

/// Result of a rollback.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackOutcome {
    /// `(lpa, restored version timestamp)` pairs actually rolled back.
    pub restored: Vec<(Lpa, Nanos)>,
    /// LPAs trimmed because they did not exist at the target time.
    pub erased: Vec<Lpa>,
    /// LPAs left untouched (no history and nothing to undo).
    pub skipped: Vec<Lpa>,
    /// Retrieval cost of the rollback reads.
    pub cost: QueryCost,
    /// Completion time of the last rollback write.
    pub finish: Nanos,
}

/// The TimeKits toolkit bound to one TimeSSD.
pub struct TimeKits<'a> {
    ssd: &'a mut TimeSsd,
    threads: u32,
}

impl<'a> TimeKits<'a> {
    /// Binds the toolkit to a device (single host thread).
    pub fn new(ssd: &'a mut TimeSsd) -> Self {
        TimeKits { ssd, threads: 1 }
    }

    /// Sets the number of host threads used for queries and recovery.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Host threads configured.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Read-only view of the underlying device.
    pub fn ssd(&self) -> &TimeSsd {
        self.ssd
    }

    fn new_cost(&self) -> QueryCost {
        QueryCost::new(self.ssd.geometry().total_chips() as u32)
    }

    /// The LPAs actually addressed by an `(addr, cnt)` request: the span is
    /// clamped to the exported address space, and `addr + cnt` saturates
    /// instead of wrapping so requests near `u64::MAX` cannot overflow (or
    /// panic in debug builds) and never scan past `exported_pages()`.
    fn lpa_span(&self, addr: Lpa, cnt: u64) -> impl Iterator<Item = Lpa> {
        let exported = self.ssd.exported_pages();
        let start = addr.0.min(exported);
        let end = addr
            .0
            .checked_add(cnt)
            .map_or(exported, |e| e.min(exported));
        (start..end).map(Lpa)
    }

    /// Starts an address query over `cnt` LPAs from `addr` — the single
    /// entry point behind Table 1's `AddrQuery` / `AddrQueryRange` /
    /// `AddrQueryAll`. Inherits this toolkit's thread count; narrow with
    /// [`AddrQuery::as_of`] or [`AddrQuery::range`], then
    /// [`AddrQuery::run`].
    pub fn query(&self, addr: Lpa, cnt: u64) -> AddrQuery<'_> {
        AddrQuery::new(self.ssd.read_view(), addr, cnt).threads(self.threads)
    }

    /// `AddrQuery(addr, cnt, t)`: the state of each LPA as of time `t` —
    /// traversal walks newest-to-oldest and stops at the first version whose
    /// writing time reaches the target (§3.9).
    #[deprecated(note = "use the `AddrQuery` builder: `kits.query(addr, cnt).as_of(t).run()`")]
    pub fn addr_query(&self, addr: Lpa, cnt: u64, t: Nanos) -> Result<(Vec<QueryHit>, QueryCost)> {
        let out = self.query(addr, cnt).as_of(t).run()?;
        Ok((out.hits, out.cost))
    }

    /// `AddrQueryRange(addr, cnt, t1, t2)`: every version written in
    /// `[t1, t2]` for each LPA, newest first.
    #[deprecated(note = "use the `AddrQuery` builder: `kits.query(addr, cnt).range(t1, t2).run()`")]
    pub fn addr_query_range(
        &self,
        addr: Lpa,
        cnt: u64,
        t1: Nanos,
        t2: Nanos,
    ) -> Result<(Vec<QueryHit>, QueryCost)> {
        let out = self.query(addr, cnt).range(t1, t2).run()?;
        Ok((out.hits, out.cost))
    }

    /// `AddrQueryAll(addr, cnt)`: every retained version of each LPA.
    #[deprecated(
        note = "use the `AddrQuery` builder: `kits.query(addr, cnt).all_versions().run()`"
    )]
    pub fn addr_query_all(&self, addr: Lpa, cnt: u64) -> Result<(Vec<QueryHit>, QueryCost)> {
        let out = self.query(addr, cnt).all_versions().run()?;
        Ok((out.hits, out.cost))
    }

    /// Shared engine of the time-based queries: scans every LPA's chain (in
    /// parallel across host threads) and returns those updated in
    /// `[from, to]` with their write timestamps.
    fn time_scan(&self, from: Nanos, to: Nanos) -> (Vec<TimeQueryHit>, QueryCost) {
        let exported = self.ssd.exported_pages();
        let threads = self.threads.max(1) as u64;
        let ssd: &TimeSsd = self.ssd;
        let lat = ssd.config().latency;
        let chips = ssd.geometry().total_chips() as u32;

        let scan_shard = |shard: u64| -> (Vec<TimeQueryHit>, QueryCost) {
            let mut cost = QueryCost::new(chips);
            let mut hits = Vec::new();
            let mut lpa = shard;
            while lpa < exported {
                let chain = ssd.version_chain(Lpa(lpa));
                if let Some(head) = chain.first() {
                    // Checking an LPA costs the head-page OOB read.
                    if let Some(chip) = head.chip {
                        cost.charge_read(chip, lat.read_ns);
                    }
                    let stamps: Vec<Nanos> = chain
                        .iter()
                        .filter(|v| v.timestamp >= from && v.timestamp <= to)
                        .map(|v| {
                            // Versions beyond the head cost chain reads.
                            if !v.is_head {
                                if let Some(chip) = v.chip {
                                    cost.charge_read(chip, lat.read_ns);
                                }
                            }
                            v.timestamp
                        })
                        .collect();
                    if !stamps.is_empty() {
                        hits.push(TimeQueryHit {
                            lpa: Lpa(lpa),
                            timestamps: stamps,
                        });
                    }
                }
                lpa += threads;
            }
            (hits, cost)
        };

        let mut results: Vec<(Vec<TimeQueryHit>, QueryCost)> = if threads <= 1 {
            vec![scan_shard(0)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|s| scope.spawn(move || scan_shard(s)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query worker panicked"))
                    .collect()
            })
        };

        let mut cost = self.new_cost();
        let mut hits = Vec::new();
        for (h, c) in results.drain(..) {
            hits.extend(h);
            cost.merge(&c);
        }
        hits.sort_by_key(|h| h.lpa);
        (hits, cost)
    }

    /// `TimeQuery(t)`: all LPAs updated since `t`, with their timestamps.
    pub fn time_query(&self, t: Nanos) -> (Vec<TimeQueryHit>, QueryCost) {
        self.time_scan(t, Nanos::MAX)
    }

    /// `TimeQueryRange(t1, t2)`: all LPAs updated inside `[t1, t2]`.
    pub fn time_query_range(&self, t1: Nanos, t2: Nanos) -> (Vec<TimeQueryHit>, QueryCost) {
        self.time_scan(t1, t2)
    }

    /// `TimeQueryAll()`: all LPAs updated inside the retention window.
    pub fn time_query_all(&self) -> (Vec<TimeQueryHit>, QueryCost) {
        self.time_scan(0, Nanos::MAX)
    }

    /// `RollBack(addr, cnt, t)`: reverts each LPA to its state as of `t` by
    /// writing the old version back as a fresh update (§3.9) — the rollback
    /// itself stays undoable. Pages that did not exist at `t` are trimmed.
    pub fn roll_back(
        &mut self,
        addr: Lpa,
        cnt: u64,
        t: Nanos,
        now: Nanos,
    ) -> Result<RollbackOutcome> {
        let lpas: Vec<Lpa> = self.lpa_span(addr, cnt).collect();
        self.roll_back_set(&lpas, t, now)
    }

    /// `RollBackAll(t)`: reverts every LPA with any history.
    pub fn roll_back_all(&mut self, t: Nanos, now: Nanos) -> Result<RollbackOutcome> {
        let exported = self.ssd.exported_pages();
        let lpas: Vec<Lpa> = (0..exported).map(Lpa).collect();
        self.roll_back_set(&lpas, t, now)
    }

    /// Rolls back an explicit set of LPAs (used by file-level recovery).
    pub fn roll_back_set(&mut self, lpas: &[Lpa], t: Nanos, now: Nanos) -> Result<RollbackOutcome> {
        let mut cost = self.new_cost();
        let mut restored = Vec::new();
        let mut erased = Vec::new();
        let mut skipped = Vec::new();
        let mut finish = now;
        for &lpa in lpas {
            match self.ssd.version_as_of(lpa, t) {
                Some(v) => {
                    let hit = fetch(self.ssd, &v, &mut cost)?;
                    // Skip the write when the current state already matches.
                    let already = self
                        .ssd
                        .version_chain(lpa)
                        .first()
                        .map(|h| h.is_head && h.timestamp == v.timestamp)
                        .unwrap_or(false);
                    if already {
                        restored.push((lpa, v.timestamp));
                        continue;
                    }
                    let c = self.ssd.write(lpa, hit.data, finish)?;
                    finish = finish.max(c.finish);
                    restored.push((lpa, v.timestamp));
                }
                None => {
                    if self.ssd.is_mapped(lpa) {
                        // The page did not exist at `t`: erase it.
                        let c = self.ssd.trim(lpa, finish)?;
                        finish = finish.max(c.finish);
                        erased.push(lpa);
                    } else {
                        skipped.push(lpa);
                    }
                }
            }
        }
        Ok(RollbackOutcome {
            restored,
            erased,
            skipped,
            cost,
            finish,
        })
    }

    /// Estimates the virtual time a `threads`-way parallel restore of `lpas`
    /// to their state at `t` would take: pages are dealt round-robin to the
    /// host threads, each thread's chain of read → (decompress) → write-back
    /// runs serially, threads overlap (Figure 11's scaling model).
    pub fn restore_cost_estimate(&self, lpas: &[Lpa], t: Nanos, threads: u32) -> Nanos {
        let lat = self.ssd.config().latency;
        let threads = threads.max(1) as usize;
        let mut worker = vec![0u64; threads];
        for (i, &lpa) in lpas.iter().enumerate() {
            let Some(v) = self.ssd.version_as_of(lpa, t) else {
                continue;
            };
            let mut cost = lat.read_total() + lat.program_total();
            if !matches!(v.location, almanac_core::VersionLocation::DataPage(_)) {
                cost += lat.read_total() + lat.decompress_ns;
            }
            worker[i % threads] += cost;
        }
        worker.into_iter().max().unwrap_or(0)
    }

    /// Reconstructs (without writing anything) the content of a set of LPAs
    /// as of `t` — the read-only half of recovery.
    pub fn snapshot_at(&self, lpas: &[Lpa], t: Nanos) -> Result<(Vec<QueryHit>, QueryCost)> {
        let mut cost = self.new_cost();
        let mut hits = Vec::new();
        for &lpa in lpas {
            let v = self
                .ssd
                .version_as_of(lpa, t)
                .ok_or(AlmanacError::NoSuchVersion { lpa, at: t })?;
            hits.push(fetch(self.ssd, &v, &mut cost)?);
        }
        Ok((hits, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almanac_core::SsdConfig;
    use almanac_flash::{Geometry, SEC_NS};

    fn device_with_history() -> TimeSsd {
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        // LPAs 0..4, three versions each at t = 1s, 2s, 3s (plus offsets).
        for round in 1..=3u64 {
            for lpa in 0..4u64 {
                ssd.write(
                    Lpa(lpa),
                    PageData::Synthetic {
                        seed: lpa,
                        version: round,
                    },
                    round * SEC_NS + lpa * 1000,
                )
                .unwrap();
            }
        }
        ssd
    }

    #[test]
    fn addr_query_returns_state_as_of() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let out = kits
            .query(Lpa(0), 4)
            .as_of(2 * SEC_NS + 500_000_000)
            .run()
            .unwrap();
        assert_eq!(out.hits.len(), 4);
        for h in &out.hits {
            assert_eq!(
                h.data,
                PageData::Synthetic {
                    seed: h.lpa.0,
                    version: 2
                }
            );
        }
        assert!(out.cost.flash_reads > 0);
    }

    #[test]
    fn addr_query_all_returns_whole_history() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let out = kits.query(Lpa(1), 1).all_versions().run().unwrap();
        assert_eq!(out.hits.len(), 3);
        assert!(out.hits.windows(2).all(|w| w[0].timestamp > w[1].timestamp));
    }

    #[test]
    fn addr_query_range_bounds_versions() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let out = kits
            .query(Lpa(0), 1)
            .range(2 * SEC_NS, 4 * SEC_NS)
            .run()
            .unwrap();
        assert_eq!(out.hits.len(), 2); // versions 2 and 3
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_builder() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let t = 2 * SEC_NS + 500_000_000;
        let (hits, cost) = kits.addr_query(Lpa(0), 4, t).unwrap();
        let out = kits.query(Lpa(0), 4).as_of(t).run().unwrap();
        assert_eq!(hits, out.hits);
        assert_eq!(cost, out.cost);
        let (hits, cost) = kits
            .addr_query_range(Lpa(0), 4, SEC_NS, 2 * SEC_NS)
            .unwrap();
        let out = kits
            .query(Lpa(0), 4)
            .range(SEC_NS, 2 * SEC_NS)
            .run()
            .unwrap();
        assert_eq!(hits, out.hits);
        assert_eq!(cost, out.cost);
        let (hits, cost) = kits.addr_query_all(Lpa(0), 4).unwrap();
        let out = kits.query(Lpa(0), 4).all_versions().run().unwrap();
        assert_eq!(hits, out.hits);
        assert_eq!(cost, out.cost);
    }

    #[test]
    fn time_query_finds_updated_lpas() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let (hits, _) = kits.time_query(3 * SEC_NS);
        assert_eq!(hits.len(), 4);
        for h in &hits {
            assert_eq!(h.timestamps.len(), 1);
        }
        let (all, _) = kits.time_query_all();
        assert_eq!(all.iter().map(|h| h.timestamps.len()).sum::<usize>(), 12);
    }

    #[test]
    fn time_query_parallel_matches_serial() {
        let mut ssd = device_with_history();
        let serial = TimeKits::new(&mut ssd).time_query_all().0;
        let mut ssd2 = device_with_history();
        let parallel = TimeKits::new(&mut ssd2).with_threads(4).time_query_all().0;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_time_query_is_faster_in_virtual_time() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let (_, cost) = kits.time_query_all();
        assert!(cost.makespan(4) < cost.makespan(1));
    }

    #[test]
    fn rollback_restores_and_is_undoable() {
        let mut ssd = device_with_history();
        let mut kits = TimeKits::new(&mut ssd);
        let out = kits
            .roll_back(Lpa(0), 1, SEC_NS + 500_000_000, 10 * SEC_NS)
            .unwrap();
        assert_eq!(out.restored.len(), 1);
        let (data, _) = ssd.read(Lpa(0), 20 * SEC_NS).unwrap();
        assert_eq!(
            data,
            PageData::Synthetic {
                seed: 0,
                version: 1
            }
        );
        // The pre-rollback state is still in the chain (rollback = write).
        let chain = ssd.version_chain(Lpa(0));
        assert_eq!(chain.len(), 4);
    }

    #[test]
    fn rollback_trims_pages_born_after_target() {
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::small_test()));
        ssd.write(Lpa(0), PageData::Zeros, 5 * SEC_NS).unwrap();
        let mut kits = TimeKits::new(&mut ssd);
        let out = kits.roll_back(Lpa(0), 1, SEC_NS, 10 * SEC_NS).unwrap();
        assert_eq!(out.erased, vec![Lpa(0)]);
        let (data, _) = ssd.read(Lpa(0), 20 * SEC_NS).unwrap();
        assert_eq!(data, PageData::Zeros);
        assert!(!ssd.is_mapped(Lpa(0)));
    }

    #[test]
    fn rollback_all_covers_device() {
        let mut ssd = device_with_history();
        let mut kits = TimeKits::new(&mut ssd);
        let out = kits
            .roll_back_all(2 * SEC_NS + 500_000_000, 100 * SEC_NS)
            .unwrap();
        assert_eq!(out.restored.len(), 4);
        for lpa in 0..4u64 {
            let (data, _) = ssd.read(Lpa(lpa), 200 * SEC_NS).unwrap();
            assert_eq!(
                data,
                PageData::Synthetic {
                    seed: lpa,
                    version: 2
                }
            );
        }
    }

    #[test]
    fn snapshot_at_does_not_mutate() {
        let mut ssd = device_with_history();
        let writes_before = ssd.stats().user_writes;
        let kits = TimeKits::new(&mut ssd);
        let (hits, _) = kits
            .snapshot_at(&[Lpa(0), Lpa(1)], 2 * SEC_NS + 500_000_000)
            .unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(ssd.stats().user_writes, writes_before);
    }

    #[test]
    fn snapshot_missing_version_errors() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        assert!(kits.snapshot_at(&[Lpa(0)], 10).is_err());
    }

    #[test]
    fn addr_query_range_boundaries_are_inclusive() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let chain = kits.ssd().version_chain(Lpa(0));
        let newest = chain.first().unwrap().timestamp;
        let oldest = chain.last().unwrap().timestamp;
        let out = kits.query(Lpa(0), 1).range(oldest, newest).run().unwrap();
        assert_eq!(out.hits.len(), chain.len());
        // Exclusive-feeling boundaries: one nanosecond inside drops the ends.
        let out = kits
            .query(Lpa(0), 1)
            .range(oldest + 1, newest - 1)
            .run()
            .unwrap();
        assert_eq!(out.hits.len(), chain.len() - 2);
    }

    #[test]
    fn restore_estimate_scales_down_with_threads() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        let lpas: Vec<Lpa> = (0..4).map(Lpa).collect();
        let t1 = kits.restore_cost_estimate(&lpas, u64::MAX, 1);
        let t4 = kits.restore_cost_estimate(&lpas, u64::MAX, 4);
        assert!(t1 > t4);
        assert!(t4 >= t1 / 4);
    }

    #[test]
    fn time_query_range_excludes_outside_window() {
        let mut ssd = device_with_history();
        let kits = TimeKits::new(&mut ssd);
        // Only the round-2 writes (t ≈ 2s).
        let (hits, _) = kits.time_query_range(2 * SEC_NS, 2 * SEC_NS + SEC_NS / 2);
        assert_eq!(hits.len(), 4);
        for h in &hits {
            assert_eq!(h.timestamps.len(), 1);
        }
    }

    #[test]
    fn queries_near_u64_max_do_not_overflow() {
        // Regression: `Lpa(addr.0 + i)` wrapped (debug-build panic) when the
        // start address sat near u64::MAX. The span must saturate and clamp
        // to the exported range, returning nothing.
        let mut ssd = device_with_history();
        let mut kits = TimeKits::new(&mut ssd);
        let addr = Lpa(u64::MAX - 1);
        let out = kits.query(addr, 8).as_of(10 * SEC_NS).run().unwrap();
        assert!(out.hits.is_empty());
        let out = kits.query(addr, 8).range(0, u64::MAX).run().unwrap();
        assert!(out.hits.is_empty());
        let out = kits.query(addr, 8).all_versions().run().unwrap();
        assert!(out.hits.is_empty());
        let out = kits.roll_back(addr, 8, SEC_NS, 10 * SEC_NS).unwrap();
        assert!(out.restored.is_empty() && out.erased.is_empty() && out.skipped.is_empty());
    }

    #[test]
    fn queries_clamp_count_to_exported_span() {
        // A count reaching past `exported_pages()` must not scan beyond the
        // device; the in-range prefix still answers.
        let mut ssd = device_with_history();
        let exported = ssd.exported_pages();
        let kits = TimeKits::new(&mut ssd);
        let out = kits
            .query(Lpa(0), exported + 1000)
            .all_versions()
            .run()
            .unwrap();
        assert_eq!(out.hits.len(), 12); // 4 LPAs × 3 versions, nothing more
        let out = kits
            .query(Lpa(exported - 1), u64::MAX)
            .as_of(10 * SEC_NS)
            .run()
            .unwrap();
        assert!(out.hits.is_empty()); // last page has no history, and no wrap
    }

    #[test]
    fn rollback_zero_count_is_a_noop() {
        let mut ssd = device_with_history();
        let writes = ssd.stats().user_writes;
        let mut kits = TimeKits::new(&mut ssd);
        let out = kits.roll_back(Lpa(0), 0, SEC_NS, 10 * SEC_NS).unwrap();
        assert!(out.restored.is_empty() && out.erased.is_empty());
        assert_eq!(ssd.stats().user_writes, writes);
    }
}
