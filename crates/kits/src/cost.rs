//! Virtual cost accounting for storage-state queries.
//!
//! Query work is a bag of flash reads (each pinned to the chip holding the
//! page) plus firmware CPU work (delta decompression). TimeKits schedules
//! the per-chip read queues onto `threads` host workers round-robin; the
//! reported latency is the makespan — which is how the paper's queries get
//! faster with more threads (Figure 11) while a single chip's queue bounds
//! the speedup.

use almanac_flash::Nanos;

/// Accumulated virtual cost of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryCost {
    per_chip: Vec<Nanos>,
    cpu: Nanos,
    /// Flash reads issued.
    pub flash_reads: u64,
    /// Deltas decompressed.
    pub decompressions: u64,
}

impl QueryCost {
    /// Empty cost over `chips` flash chips.
    pub fn new(chips: u32) -> Self {
        QueryCost {
            per_chip: vec![0; chips as usize],
            cpu: 0,
            flash_reads: 0,
            decompressions: 0,
        }
    }

    /// Charges one flash read of `cost` to `chip`.
    pub fn charge_read(&mut self, chip: u32, cost: Nanos) {
        self.per_chip[chip as usize] += cost;
        self.flash_reads += 1;
    }

    /// Charges CPU work (decompression, verification).
    pub fn charge_cpu(&mut self, cost: Nanos) {
        self.cpu += cost;
    }

    /// Notes one decompression (the CPU cost is charged separately).
    pub fn note_decompression(&mut self) {
        self.decompressions += 1;
    }

    /// Merges another cost (e.g. from a parallel worker).
    pub fn merge(&mut self, other: &QueryCost) {
        for (a, b) in self.per_chip.iter_mut().zip(&other.per_chip) {
            *a += b;
        }
        self.cpu += other.cpu;
        self.flash_reads += other.flash_reads;
        self.decompressions += other.decompressions;
    }

    /// Query latency with `threads` host workers: chips are dealt to the
    /// workers round-robin; a worker's time is the sum of its chips' queues;
    /// the makespan is the worst worker. CPU work is spread evenly.
    pub fn makespan(&self, threads: u32) -> Nanos {
        let threads = threads.max(1) as usize;
        let mut workers = vec![0u64; threads];
        for (chip, &cost) in self.per_chip.iter().enumerate() {
            workers[chip % threads] += cost;
        }
        let cpu_share = self.cpu / threads as u64;
        workers.iter().map(|w| w + cpu_share).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_thread_sums_everything() {
        let mut c = QueryCost::new(4);
        c.charge_read(0, 10);
        c.charge_read(1, 20);
        c.charge_cpu(5);
        assert_eq!(c.makespan(1), 35);
    }

    #[test]
    fn makespan_shrinks_with_threads() {
        let mut c = QueryCost::new(4);
        for chip in 0..4 {
            c.charge_read(chip, 100);
        }
        assert_eq!(c.makespan(1), 400);
        assert_eq!(c.makespan(2), 200);
        assert_eq!(c.makespan(4), 100);
    }

    #[test]
    fn single_chip_bounds_speedup() {
        let mut c = QueryCost::new(4);
        c.charge_read(2, 100);
        c.charge_read(2, 100);
        assert_eq!(c.makespan(8), 200);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryCost::new(2);
        a.charge_read(0, 10);
        let mut b = QueryCost::new(2);
        b.charge_read(1, 30);
        b.note_decompression();
        a.merge(&b);
        assert_eq!(a.flash_reads, 2);
        assert_eq!(a.decompressions, 1);
        assert_eq!(a.makespan(1), 40);
    }
}
