//! Virtual cost accounting for storage-state queries.
//!
//! Query work is a bag of flash reads (each pinned to the chip holding the
//! page) plus firmware CPU work (delta decompression). TimeKits schedules
//! the per-chip read queues onto `threads` host workers round-robin; the
//! reported latency is the makespan — which is how the paper's queries get
//! faster with more threads (Figure 11) while a single chip's queue bounds
//! the speedup.

use almanac_flash::Nanos;

/// Accumulated virtual cost of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryCost {
    per_chip: Vec<Nanos>,
    cpu: Nanos,
    /// Flash reads issued.
    pub flash_reads: u64,
    /// Deltas decompressed.
    pub decompressions: u64,
}

impl QueryCost {
    /// Empty cost over `chips` flash chips.
    pub fn new(chips: u32) -> Self {
        QueryCost {
            per_chip: vec![0; chips as usize],
            cpu: 0,
            flash_reads: 0,
            decompressions: 0,
        }
    }

    /// Charges one flash read of `cost` to `chip`.
    pub fn charge_read(&mut self, chip: u32, cost: Nanos) {
        self.per_chip[chip as usize] += cost;
        self.flash_reads += 1;
    }

    /// Charges CPU work (decompression, verification).
    pub fn charge_cpu(&mut self, cost: Nanos) {
        self.cpu += cost;
    }

    /// Notes one decompression (the CPU cost is charged separately).
    pub fn note_decompression(&mut self) {
        self.decompressions += 1;
    }

    /// Merges another cost (e.g. from a parallel worker).
    pub fn merge(&mut self, other: &QueryCost) {
        for (a, b) in self.per_chip.iter_mut().zip(&other.per_chip) {
            *a += b;
        }
        self.cpu += other.cpu;
        self.flash_reads += other.flash_reads;
        self.decompressions += other.decompressions;
    }

    /// Query latency with `threads` host workers: chips are dealt to the
    /// workers round-robin; a worker's time is the sum of its chips' queues;
    /// the makespan is the worst worker.
    ///
    /// CPU work (decompression) only exists where flash reads produced
    /// deltas, so it is distributed over the *loaded* workers — ceiling
    /// shares first, the remainder nanoseconds one per worker — never
    /// spread onto idle workers and never rounded down to zero.
    pub fn makespan(&self, threads: u32) -> Nanos {
        let threads = threads.max(1) as usize;
        let mut workers = vec![0u64; threads];
        for (chip, &cost) in self.per_chip.iter().enumerate() {
            workers[chip % threads] += cost;
        }
        if self.cpu > 0 {
            let loaded: Vec<usize> = (0..threads).filter(|&w| workers[w] > 0).collect();
            // A pure-CPU query (no chip work at all) still runs somewhere:
            // fall back to all workers.
            let targets: Vec<usize> = if loaded.is_empty() {
                (0..threads).collect()
            } else {
                loaded
            };
            let n = targets.len() as u64;
            let share = self.cpu / n;
            let remainder = (self.cpu % n) as usize;
            for (i, &w) in targets.iter().enumerate() {
                workers[w] += share + u64::from(i < remainder);
            }
        }
        workers.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_thread_sums_everything() {
        let mut c = QueryCost::new(4);
        c.charge_read(0, 10);
        c.charge_read(1, 20);
        c.charge_cpu(5);
        assert_eq!(c.makespan(1), 35);
    }

    #[test]
    fn makespan_shrinks_with_threads() {
        let mut c = QueryCost::new(4);
        for chip in 0..4 {
            c.charge_read(chip, 100);
        }
        assert_eq!(c.makespan(1), 400);
        assert_eq!(c.makespan(2), 200);
        assert_eq!(c.makespan(4), 100);
    }

    #[test]
    fn single_chip_bounds_speedup() {
        let mut c = QueryCost::new(4);
        c.charge_read(2, 100);
        c.charge_read(2, 100);
        assert_eq!(c.makespan(8), 200);
    }

    #[test]
    fn cpu_cost_survives_when_smaller_than_thread_count() {
        // Regression: with `cpu < threads`, the old even split computed
        // `cpu / threads == 0` and the decompression cost vanished.
        let threads = 4u32;
        let mut c = QueryCost::new(4);
        c.charge_read(0, 100);
        c.charge_cpu(threads as u64 - 1); // cpu = threads - 1 = 3
        assert_eq!(c.makespan(threads), 103);
        assert_eq!(c.makespan(1), 103);
    }

    #[test]
    fn cpu_cost_lands_on_loaded_workers_only() {
        // One loaded chip, many idle workers: the idle workers must not
        // absorb (and thereby hide) CPU time, and the loaded worker pays
        // all of it.
        let mut c = QueryCost::new(8);
        c.charge_read(3, 50);
        c.charge_cpu(40);
        assert_eq!(c.makespan(8), 90);
    }

    #[test]
    fn cpu_remainder_is_distributed_one_ns_per_worker() {
        // Two loaded workers, cpu = 5 → shares 3 and 2, not 2 and 2.
        let mut c = QueryCost::new(2);
        c.charge_read(0, 100);
        c.charge_read(1, 100);
        c.charge_cpu(5);
        assert_eq!(c.makespan(2), 103);
        // Total work is conserved under one thread.
        assert_eq!(c.makespan(1), 205);
    }

    #[test]
    fn pure_cpu_query_still_costs() {
        let mut c = QueryCost::new(4);
        c.charge_cpu(9);
        assert_eq!(c.makespan(4), 3); // ceil(9 / 4) on the busiest worker
        assert_eq!(c.makespan(1), 9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = QueryCost::new(2);
        a.charge_read(0, 10);
        let mut b = QueryCost::new(2);
        b.charge_read(1, 30);
        b.note_decompression();
        a.merge(&b);
        assert_eq!(a.flash_reads, 2);
        assert_eq!(a.decompressions, 1);
        assert_eq!(a.makespan(1), 40);
    }
}
