//! TimeKits: the storage-state query and rollback toolkit of Project
//! Almanac (§3.9, Table 1).
//!
//! TimeKits rides on the firmware-isolated time-travel property of
//! [`TimeSsd`](almanac_core::TimeSsd) and exposes the paper's full API:
//!
//! | API | Meaning |
//! |-----|---------|
//! | `query(..).as_of(t)` | state of LPA(s) as of a past time (`AddrQuery`) |
//! | `query(..).range(t1, t2)` | all versions of LPA(s) in a time window (`AddrQueryRange`) |
//! | `query(..).all_versions()` | every retained version of LPA(s) (`AddrQueryAll`) |
//! | `time_query` | LPAs updated since a time, with timestamps |
//! | `time_query_range` | LPAs updated inside a window |
//! | `time_query_all` | LPAs updated inside the whole retention window |
//! | `roll_back` | revert LPA(s) to their state at a past time |
//! | `roll_back_all` | revert every valid LPA |
//!
//! The three address queries share one entry point, the [`AddrQuery`]
//! builder, which runs against an [`SsdReadView`](almanac_core::SsdReadView)
//! — the `&self` read path — and fans the scan across the device's AMT
//! shards on scoped host threads. The legacy `addr_query` /
//! `addr_query_range` / `addr_query_all` methods survive as deprecated
//! shims over the builder.
//!
//! Queries exploit the SSD's internal parallelism: retrieval work is
//! scheduled across flash chips and the reported virtual latency is the
//! makespan across worker threads (Figure 11's multi-threaded recovery);
//! address queries additionally report the sharded-schedule makespan via
//! [`AddrQueryOutcome::makespan`].
//!
//! # Examples
//!
//! ```
//! use almanac_core::{SsdConfig, SsdDevice, TimeSsd};
//! use almanac_flash::{Geometry, Lpa, PageData, SEC_NS};
//! use almanac_kits::TimeKits;
//!
//! let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::small_test()));
//! ssd.write(Lpa(0), PageData::bytes(b"old".to_vec()), SEC_NS).unwrap();
//! ssd.write(Lpa(0), PageData::bytes(b"new".to_vec()), 5 * SEC_NS).unwrap();
//!
//! let mut kits = TimeKits::new(&mut ssd);
//! // What did LPA 0 hold three seconds in?
//! let out = kits.query(Lpa(0), 1).as_of(3 * SEC_NS).run().unwrap();
//! assert_eq!(out.hits[0].data, PageData::bytes(b"old".to_vec()));
//! // Roll it back.
//! kits.roll_back(Lpa(0), 1, 3 * SEC_NS, 10 * SEC_NS).unwrap();
//! let (data, _) = ssd.read(Lpa(0), 11 * SEC_NS).unwrap();
//! assert_eq!(data, PageData::bytes(b"old".to_vec()));
//! ```

#![warn(missing_docs)]

mod addr_query;
mod cost;
mod evidence;
mod kits;
mod recovery;

pub use addr_query::{AddrQuery, AddrQueryOutcome};
pub use cost::QueryCost;
pub use evidence::{EvidenceArchive, EvidenceRecord};
pub use kits::{QueryHit, RollbackOutcome, TimeKits, TimeQueryHit};
pub use recovery::{FileMap, RecoveredFile};
