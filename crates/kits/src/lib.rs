//! TimeKits: the storage-state query and rollback toolkit of Project
//! Almanac (§3.9, Table 1).
//!
//! TimeKits rides on the firmware-isolated time-travel property of
//! [`TimeSsd`](almanac_core::TimeSsd) and exposes the paper's full API:
//!
//! | API | Meaning |
//! |-----|---------|
//! | `addr_query` | state of LPA(s) as of a past time |
//! | `addr_query_range` | all versions of LPA(s) in a time window |
//! | `addr_query_all` | every retained version of LPA(s) |
//! | `time_query` | LPAs updated since a time, with timestamps |
//! | `time_query_range` | LPAs updated inside a window |
//! | `time_query_all` | LPAs updated inside the whole retention window |
//! | `roll_back` | revert LPA(s) to their state at a past time |
//! | `roll_back_all` | revert every valid LPA |
//!
//! Queries exploit the SSD's internal parallelism: retrieval work is
//! scheduled across flash chips and the reported virtual latency is the
//! makespan across worker threads (Figure 11's multi-threaded recovery).
//!
//! # Examples
//!
//! ```
//! use almanac_core::{SsdConfig, SsdDevice, TimeSsd};
//! use almanac_flash::{Geometry, Lpa, PageData, SEC_NS};
//! use almanac_kits::TimeKits;
//!
//! let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::small_test()));
//! ssd.write(Lpa(0), PageData::bytes(b"old".to_vec()), SEC_NS).unwrap();
//! ssd.write(Lpa(0), PageData::bytes(b"new".to_vec()), 5 * SEC_NS).unwrap();
//!
//! let mut kits = TimeKits::new(&mut ssd);
//! // What did LPA 0 hold three seconds in?
//! let (hits, _cost) = kits.addr_query(Lpa(0), 1, 3 * SEC_NS).unwrap();
//! assert_eq!(hits[0].data, PageData::bytes(b"old".to_vec()));
//! // Roll it back.
//! kits.roll_back(Lpa(0), 1, 3 * SEC_NS, 10 * SEC_NS).unwrap();
//! let (data, _) = ssd.read(Lpa(0), 11 * SEC_NS).unwrap();
//! assert_eq!(data, PageData::bytes(b"old".to_vec()));
//! ```

#![warn(missing_docs)]

mod cost;
mod evidence;
mod kits;
mod recovery;

pub use cost::QueryCost;
pub use evidence::{EvidenceArchive, EvidenceRecord};
pub use kits::{QueryHit, RollbackOutcome, TimeKits, TimeQueryHit};
pub use recovery::{FileMap, RecoveredFile};
