//! Forensic evidence export (the §2.2 storage-forensics use case).
//!
//! Investigators need an *evidence chain*: every version of every affected
//! page inside the incident window, with content digests, ordered in time,
//! in a form that can leave the machine. [`TimeKits::export_evidence`]
//! produces exactly that — a self-describing text archive built from the
//! firmware-isolated history, which the host OS (even a compromised one)
//! could not have altered.

use std::fmt::Write as _;

use almanac_core::Result;
use almanac_flash::{Lpa, Nanos};

use crate::kits::TimeKits;

/// One exported version record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceRecord {
    /// Logical page.
    pub lpa: Lpa,
    /// Write timestamp.
    pub timestamp: Nanos,
    /// FNV-1a digest of the page content.
    pub digest: u64,
    /// Content length before page padding (always the page size here).
    pub len: usize,
}

/// A complete evidence archive for a time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceArchive {
    /// Window start.
    pub from: Nanos,
    /// Window end.
    pub to: Nanos,
    /// Version records, ordered by `(timestamp, lpa)`.
    pub records: Vec<EvidenceRecord>,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl EvidenceArchive {
    /// Serialises the archive to its text form (one record per line plus a
    /// trailer digest covering the whole archive).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# almanac evidence archive");
        let _ = writeln!(out, "# window {} {}", self.from, self.to);
        let _ = writeln!(out, "# records {}", self.records.len());
        for r in &self.records {
            let _ = writeln!(
                out,
                "{} {} {:016x} {}",
                r.timestamp, r.lpa.0, r.digest, r.len
            );
        }
        let trailer = fnv1a(out.as_bytes());
        let _ = writeln!(out, "# trailer {trailer:016x}");
        out
    }

    /// Verifies a text archive's trailer digest; returns the record count.
    pub fn verify_text(text: &str) -> Option<usize> {
        let trailer_line = text.lines().last()?;
        let expect = trailer_line.strip_prefix("# trailer ")?;
        let body_end = text.rfind("# trailer ")?;
        let actual = fnv1a(&text.as_bytes()[..body_end]);
        if format!("{actual:016x}") != expect {
            return None;
        }
        let records = text
            .lines()
            .find(|l| l.starts_with("# records "))?
            .strip_prefix("# records ")?
            .parse()
            .ok()?;
        Some(records)
    }
}

impl TimeKits<'_> {
    /// Exports every retrievable version written in `[from, to]` across the
    /// whole device as an evidence archive.
    pub fn export_evidence(&self, from: Nanos, to: Nanos) -> Result<EvidenceArchive> {
        let page_size = self.ssd().geometry().page_size as usize;
        let (hits, _) = self.time_query_range(from, to);
        let mut records = Vec::new();
        for hit in hits {
            for ts in hit.timestamps {
                let content = self.ssd().version_content(hit.lpa, ts)?;
                let bytes = content.materialize(page_size);
                records.push(EvidenceRecord {
                    lpa: hit.lpa,
                    timestamp: ts,
                    digest: fnv1a(&bytes),
                    len: bytes.len(),
                });
            }
        }
        records.sort_by_key(|r| (r.timestamp, r.lpa));
        Ok(EvidenceArchive { from, to, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almanac_core::{SsdConfig, SsdDevice, TimeSsd};
    use almanac_flash::{Geometry, PageData, SEC_NS};

    fn busy_device() -> TimeSsd {
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        for i in 0..10u64 {
            ssd.write(
                Lpa(i % 4),
                PageData::bytes(format!("gen {i}").into_bytes()),
                (i + 1) * SEC_NS,
            )
            .unwrap();
        }
        ssd
    }

    #[test]
    fn archive_covers_the_window() {
        let mut ssd = busy_device();
        let kits = TimeKits::new(&mut ssd);
        let archive = kits.export_evidence(3 * SEC_NS, 7 * SEC_NS).unwrap();
        assert_eq!(archive.records.len(), 5); // writes at t=3..=7 s
        assert!(archive
            .records
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn identical_content_has_identical_digest() {
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        ssd.write(Lpa(0), PageData::bytes(b"same".to_vec()), SEC_NS)
            .unwrap();
        ssd.write(Lpa(1), PageData::bytes(b"same".to_vec()), 2 * SEC_NS)
            .unwrap();
        let kits = TimeKits::new(&mut ssd);
        let archive = kits.export_evidence(0, u64::MAX).unwrap();
        assert_eq!(archive.records[0].digest, archive.records[1].digest);
    }

    #[test]
    fn text_roundtrip_verifies() {
        let mut ssd = busy_device();
        let kits = TimeKits::new(&mut ssd);
        let archive = kits.export_evidence(0, u64::MAX).unwrap();
        let text = archive.to_text();
        assert_eq!(
            EvidenceArchive::verify_text(&text),
            Some(archive.records.len())
        );
    }

    #[test]
    fn tampering_breaks_the_trailer() {
        let mut ssd = busy_device();
        let kits = TimeKits::new(&mut ssd);
        let text = kits.export_evidence(0, u64::MAX).unwrap().to_text();
        let tampered = text.replacen("gen", "GEN", 1); // no-op if absent; mutate a digit instead
        let tampered = if tampered == text {
            text.replacen('1', "2", 1)
        } else {
            tampered
        };
        assert_eq!(EvidenceArchive::verify_text(&tampered), None);
    }
}
