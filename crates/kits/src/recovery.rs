//! File-level recovery on top of the page-level Table-1 API.
//!
//! The paper's case studies (§5.5) recover whole files — ransomware victims
//! and reverted OS source files — by obtaining the file's LPAs from the
//! file-system metadata and rolling each page back. A [`FileMap`] carries
//! exactly that: a file name plus its data-page LPAs in file order.

use almanac_core::Result;
use almanac_flash::{Lpa, Nanos, PageData};

use crate::cost::QueryCost;
use crate::kits::TimeKits;

/// A file's identity and page layout, as exported by the file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMap {
    /// Human-readable name (e.g. `"mm/mmap.c"`).
    pub name: String,
    /// Data-page LPAs in file order.
    pub lpas: Vec<Lpa>,
    /// File size in bytes (the last page may be partial).
    pub size: u64,
}

/// A file reconstructed as of some past time.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredFile {
    /// The file's name.
    pub name: String,
    /// Reconstructed page contents in file order.
    pub pages: Vec<PageData>,
    /// Retrieval cost.
    pub cost: QueryCost,
}

impl RecoveredFile {
    /// Concatenates the pages into the file's bytes, truncated to `size`.
    pub fn into_bytes(self, page_size: usize, size: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pages.len() * page_size);
        for p in &self.pages {
            out.extend_from_slice(&p.materialize(page_size));
        }
        out.truncate(size as usize);
        out
    }
}

impl TimeKits<'_> {
    /// Reconstructs a file's content as of time `t` without modifying the
    /// device (read-only recovery, e.g. for forensic export).
    pub fn recover_file(&self, map: &FileMap, t: Nanos) -> Result<RecoveredFile> {
        let (hits, cost) = self.snapshot_at(&map.lpas, t)?;
        Ok(RecoveredFile {
            name: map.name.clone(),
            pages: hits.into_iter().map(|h| h.data).collect(),
            cost,
        })
    }

    /// Rolls a file back in place to its state as of `t`.
    pub fn restore_file(
        &mut self,
        map: &FileMap,
        t: Nanos,
        now: Nanos,
    ) -> Result<crate::kits::RollbackOutcome> {
        self.roll_back_set(&map.lpas, t, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almanac_core::{SsdConfig, SsdDevice, TimeSsd};
    use almanac_flash::{Geometry, SEC_NS};

    #[test]
    fn recover_and_restore_a_file() {
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        let lpas = vec![Lpa(10), Lpa(11)];
        // Original content, then "ransomware" overwrites it.
        for (i, lpa) in lpas.iter().enumerate() {
            ssd.write(*lpa, PageData::bytes(vec![i as u8; 32]), SEC_NS)
                .unwrap();
        }
        for lpa in &lpas {
            ssd.write(*lpa, PageData::bytes(b"ENCRYPTED!".to_vec()), 5 * SEC_NS)
                .unwrap();
        }
        let map = FileMap {
            name: "victim.txt".into(),
            lpas: lpas.clone(),
            size: 40,
        };
        let mut kits = TimeKits::new(&mut ssd);
        let recovered = kits.recover_file(&map, 2 * SEC_NS).unwrap();
        assert_eq!(recovered.pages[0], PageData::bytes(vec![0u8; 32]));
        assert_eq!(recovered.pages[1], PageData::bytes(vec![1u8; 32]));

        kits.restore_file(&map, 2 * SEC_NS, 10 * SEC_NS).unwrap();
        let (data, _) = ssd.read(Lpa(10), 20 * SEC_NS).unwrap();
        assert_eq!(data, PageData::bytes(vec![0u8; 32]));
    }

    #[test]
    fn recovered_file_serialises_to_bytes() {
        let rec = RecoveredFile {
            name: "f".into(),
            pages: vec![PageData::bytes(vec![1, 2]), PageData::bytes(vec![3])],
            cost: QueryCost::new(1),
        };
        let bytes = rec.into_bytes(4, 6);
        assert_eq!(bytes, vec![1, 2, 0, 0, 3, 0]);
    }
}
