//! Deterministic in-tree PRNG exposing the subset of the `rand` crate API
//! this workspace uses (`StdRng`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool, gen_ratio, fill}`).
//!
//! The build environment has no access to crates.io, so the workspace maps
//! the `rand` dependency name onto this crate. The generator is an
//! xoshiro256** seeded through splitmix64 — not cryptographic, but fast and
//! a pure function of its seed, which is all the deterministic simulation
//! stack requires. Streams differ numerically from the real `StdRng`
//! (ChaCha12); nothing in the workspace depends on exact values, only on
//! seed-reproducibility.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; splitmix64 cannot
        // produce four zero outputs from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x1;
        }
        StdRng { s }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A type samplable uniformly from its full range by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A type drawable uniformly from a bounded range.
///
/// A single blanket `SampleRange` impl over this trait (rather than one
/// concrete impl per integer type) lets type inference flow through
/// `gen_range(0..n)` the way it does with the real `rand` crate — the
/// literal's type is unified with the surrounding expression.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`). Panics when the range is empty.
    fn sample_uniform(rng: &mut StdRng, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut StdRng, start: Self, end: Self, inclusive: bool) -> Self {
                let lo = start as i128;
                let hi = end as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "gen_range on empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform(rng: &mut StdRng, start: Self, end: Self, _inclusive: bool) -> Self {
        assert!(start < end, "gen_range on empty range");
        start + <f64 as Standard>::sample(rng) * (end - start)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range. Panics when the range is empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_raw(&mut self) -> u64;

    /// Draws a full-range value of `T`.
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Returns true with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool;

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]);
}

impl Rng for StdRng {
    fn next_raw(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// The `rand::rngs` module shape.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_ratio_behaves() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((1_800..3_200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_covers_slice() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 33];
        r.fill(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
