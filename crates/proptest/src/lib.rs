//! Minimal deterministic property-testing harness exposing the subset of the
//! `proptest` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace maps
//! the `proptest` dev-dependency name onto this crate. Differences from real
//! proptest, by design:
//!
//! - **No shrinking.** A failing case reports the test name, case index, and
//!   per-case seed; re-running is fully deterministic, so the failing input
//!   is reproducible by construction.
//! - **Deterministic seeds.** Case `i` of test `t` draws from a generator
//!   seeded by `fnv(module_path, t) + i`; there is no OS entropy anywhere,
//!   matching the repo-wide "pure function of its seeds" rule.
//! - The [`Strategy`] trait is generation-only (`Value` + `generate`), with
//!   the combinators the tests use: `prop_map`, ranges, tuples, [`Just`],
//!   [`collection::vec`], [`collection::hash_set`], [`sample::select`],
//!   [`sample::Index`], [`prop_oneof!`], and [`any`].

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator driving a single property-test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for deriving per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRng {
    /// Builds the generator for one case of one test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut sm = fnv1a(test_path).wrapping_add(case as u64);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64 bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Failure value a property-test body can bubble up with `?`.
///
/// Mirrors `proptest::test_runner::TestCaseError` closely enough for helper
/// functions returning `Result<(), TestCaseError>`; the runner treats an
/// `Err` exactly like an assertion panic.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy on empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (see [`any`]).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A weighted union of same-valued strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.arms
            .last()
            .expect("prop_oneof! with no arms")
            .1
            .generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Size specification: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Collisions shrink the set; retry a bounded number of times so
            // the requested size is met for all realistic element domains.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Hash set of values from `element`, sized by `size`.
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::*;

    /// An opaque index resolved against a runtime collection length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        /// Panics when `len == 0`, as in real proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }

        /// Resolves against a slice and returns the element.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Strategy yielding clones of elements of `options`.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select on empty options");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// The `proptest::prelude` shape: everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop` module alias (`prop::sample`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Weighted choice over strategies with a common value type.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`;
/// unweighted arms default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares deterministic property tests.
///
/// Mirrors the `proptest!` surface used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(path, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        Ok(Ok(())) => {}
                        Ok(Err(err)) => {
                            panic!(
                                "proptest failure: {path} case {case}/{}: {err} \
                                 (deterministic; rerun reproduces it)",
                                config.cases
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest failure: {path} case {case}/{} (deterministic; rerun reproduces it)",
                                config.cases
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = crate::collection::vec(0u64..100, 1..16usize);
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn oneof_respects_arms() {
        let strat = prop_oneof![
            3 => (0u32..10).prop_map(|v| v as u64),
            1 => Just(99u64),
        ];
        let mut rng = TestRng::for_case("arms", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || v == 99);
        }
    }

    #[test]
    fn hash_set_meets_size() {
        let strat = crate::collection::hash_set(any::<u64>(), 8..16usize);
        let mut rng = TestRng::for_case("hs", 1);
        let s = strat.generate(&mut rng);
        assert!((8..16).contains(&s.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(v in crate::collection::vec(any::<u8>(), 0..32usize), n in 1u64..5) {
            prop_assert!(v.len() < 32);
            prop_assert!((1..5).contains(&n));
        }
    }
}
