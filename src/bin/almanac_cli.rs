//! `almanac` — a command-line tour of the time-traveling SSD.
//!
//! ```text
//! almanac profiles                    list the calibrated trace profiles
//! almanac replay <trace> [days]       replay a trace on TimeSSD vs regular SSD
//! almanac attack <family>             run a ransomware family and recover
//! almanac families                    list the 13 ransomware families
//! almanac timeline                    tamper-evident audit demo
//! ```

use std::env;
use std::process::ExitCode;

use almanac::core::{RegularSsd, SsdConfig, SsdDevice, SsdReadOps, TimeSsd};
use almanac::flash::{Geometry, Lpa, PageData, DAY_NS, SEC_NS};
use almanac::fs::{AlmanacFs, FsMode};
use almanac::kits::TimeKits;
use almanac::trace::replay;
use almanac::workloads::ransomware::{attack, families};
use almanac::workloads::{fiu_profiles, msr_profiles};

fn usage() -> ExitCode {
    eprintln!(
        "usage: almanac <command>\n\
         \n\
         commands:\n\
         \x20 profiles                 list the calibrated MSR/FIU trace profiles\n\
         \x20 replay <trace> [days]    replay a trace on TimeSSD and a regular SSD\n\
         \x20 families                 list the 13 ransomware families\n\
         \x20 attack <family>          run a ransomware attack and recover the data\n\
         \x20 timeline                 show the tamper-evident device timeline demo"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("profiles") => cmd_profiles(),
        Some("replay") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let days = args.get(2).and_then(|d| d.parse().ok()).unwrap_or(2u32);
            cmd_replay(name, days)
        }
        Some("families") => cmd_families(),
        Some("attack") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            cmd_attack(name)
        }
        Some("timeline") => cmd_timeline(),
        _ => usage(),
    }
}

fn cmd_profiles() -> ExitCode {
    println!(
        "{:<12} {:>7} {:>11} {:>9}",
        "trace", "write%", "pages/day", "workset"
    );
    for p in msr_profiles().into_iter().chain(fiu_profiles()) {
        println!(
            "{:<12} {:>6.0}% {:>10.1}% {:>8.1}%",
            p.name,
            p.write_ratio * 100.0,
            p.daily_write_fraction * 100.0,
            p.working_set * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_replay(name: &str, days: u32) -> ExitCode {
    let Some(profile) = almanac::workloads::profiles::profile_by_name(name) else {
        eprintln!("unknown trace '{name}' — try `almanac profiles`");
        return ExitCode::FAILURE;
    };
    println!("replaying {name} for {days} simulated day(s) on both devices…");
    let geometry = Geometry::bench();
    for kind in ["regular", "timessd"] {
        let (report, retention) = if kind == "regular" {
            let mut ssd = RegularSsd::new(SsdConfig::new(geometry));
            let trace = profile.generate(days, ssd.exported_pages(), 42);
            (replay(&trace, &mut ssd).expect("replay"), None)
        } else {
            let mut ssd = TimeSsd::new(SsdConfig::new(geometry));
            let trace = profile.generate(days, ssd.exported_pages(), 42);
            let report = replay(&trace, &mut ssd).expect("replay");
            let window = ssd.retention_window(report.end_time);
            (report, Some(window))
        };
        print!(
            "  {kind:<8}  avg {:.2} ms   WA {:.3}   {} writes",
            report.avg_response_ns / 1e6,
            report.write_amplification,
            report.user_writes,
        );
        match retention {
            Some(w) => println!("   retention window {:.1} d", w as f64 / DAY_NS as f64),
            None => println!(),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_families() -> ExitCode {
    println!(
        "{:<16} {:>7} {:>8}  deletes originals",
        "family", "MiB", "MiB/s"
    );
    for f in families() {
        println!(
            "{:<16} {:>7} {:>8.1}  {}",
            f.name, f.victim_mib, f.rate_mib_s, f.deletes_originals
        );
    }
    ExitCode::SUCCESS
}

fn cmd_attack(name: &str) -> ExitCode {
    let Some(family) = families()
        .into_iter()
        .find(|f| f.name.eq_ignore_ascii_case(name))
    else {
        eprintln!("unknown family '{name}' — try `almanac families`");
        return ExitCode::FAILURE;
    };
    println!("planting documents and running {}…", family.name);
    let ssd = TimeSsd::new(SsdConfig::new(Geometry::bench()));
    let mut fs = AlmanacFs::new(ssd, FsMode::Ext4NoJournal).expect("format");
    let report = attack(&mut fs, family, 42, 0).expect("attack");
    println!(
        "  encrypted {} MiB across {} files in {:.1}s (virtual)",
        report.bytes_encrypted >> 20,
        report.victims.len(),
        (report.attack_end - report.attack_start) as f64 / 1e9
    );
    let victim_pages: Vec<Lpa> = report
        .victims
        .iter()
        .flat_map(|v| v.lpas.iter().copied())
        .collect();
    let mut kits = TimeKits::new(fs.device_mut()).with_threads(8);
    let estimate = kits.restore_cost_estimate(&victim_pages, report.pre_attack_time, 8);
    let out = kits
        .roll_back_set(&victim_pages, report.pre_attack_time, report.attack_end)
        .expect("recovery");
    println!(
        "  recovered {} pages from firmware history in {:.2}s (virtual, 8 threads)",
        out.restored.len(),
        estimate as f64 / 1e9
    );
    ExitCode::SUCCESS
}

fn cmd_timeline() -> ExitCode {
    let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
    println!("writing three generations of page L5, then trimming it…");
    for (t, tag) in [(1u64, 1u64), (2, 2), (3, 3)] {
        ssd.write(
            Lpa(5),
            PageData::Synthetic {
                seed: 5,
                version: tag,
            },
            t * SEC_NS,
        )
        .expect("write");
    }
    ssd.trim(Lpa(5), 4 * SEC_NS).expect("trim");
    println!("host view after trim: zeros. firmware timeline:");
    for v in ssd.version_chain(Lpa(5)) {
        println!(
            "  t={:>3.0}s  {:?}  head={}",
            v.timestamp as f64 / 1e9,
            v.location,
            v.is_head
        );
    }
    let kits = TimeKits::new(&mut ssd);
    let (hits, _) = kits.time_query_all();
    println!(
        "TimeQueryAll sees {} updated page(s) — deletion hid nothing.",
        hits.len()
    );
    ExitCode::SUCCESS
}
