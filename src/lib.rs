//! Project Almanac: a time-traveling solid-state drive.
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! architecture overview and `DESIGN.md` for the per-experiment index.

#![warn(missing_docs)]

pub use almanac_bloom as bloom;
pub use almanac_compress as compress;
pub use almanac_core as core;
pub use almanac_flash as flash;
pub use almanac_fs as fs;
pub use almanac_kits as kits;
pub use almanac_nvme as nvme;
pub use almanac_trace as trace;
pub use almanac_workloads as workloads;
