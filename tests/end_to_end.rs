//! End-to-end integration tests across the whole stack: file system on
//! TimeSSD, workload generators, TimeKits queries and recovery.

use almanac::core::{RegularSsd, SsdConfig, SsdDevice, SsdReadOps, TimeSsd};
use almanac::flash::{Geometry, Lpa, PageData, SEC_NS};
use almanac::fs::{AlmanacFs, FsMode};
use almanac::kits::{FileMap, TimeKits};
use almanac::trace::replay;
use almanac::workloads::oltp::{OltpEngine, OltpMix};
use almanac::workloads::postmark::{self, PostmarkConfig};
use almanac::workloads::profiles;
use almanac::workloads::ransomware::{attack, Family};

fn medium_timessd() -> TimeSsd {
    TimeSsd::new(SsdConfig::new(Geometry::medium_test()))
}

#[test]
fn full_stack_file_history_survives_fs_indirection() {
    let mut fs = AlmanacFs::new(medium_timessd(), FsMode::Ext4NoJournal).unwrap();
    let (fid, t) = fs.create("report.txt", SEC_NS).unwrap();
    let t = fs.write(fid, 0, b"verdict: innocent", t).unwrap();
    let checkpoint = t;
    let t = fs.write(fid, 0, b"verdict: GUILTY!!", t + SEC_NS).unwrap();

    // Current state through the FS.
    let (now, t) = fs.read(fid, 0, 17, t).unwrap();
    assert_eq!(&now, b"verdict: GUILTY!!");

    // Past state through the device's time-travel index.
    let (_, lpas, size) = fs.file_map(fid).unwrap();
    let map = FileMap {
        name: "report.txt".into(),
        lpas,
        size,
    };
    let kits = TimeKits::new(fs.device_mut());
    let recovered = kits.recover_file(&map, checkpoint).unwrap();
    let bytes = recovered.into_bytes(4096, 17);
    assert_eq!(&bytes, b"verdict: innocent");
    let _ = t;
}

#[test]
fn postmark_on_timessd_leaves_recoverable_history() {
    let mut fs = AlmanacFs::new(medium_timessd(), FsMode::Ext4NoJournal).unwrap();
    let report = postmark::run(
        &mut fs,
        PostmarkConfig {
            initial_files: 20,
            transactions: 200,
            ..Default::default()
        },
        5,
        0,
    )
    .unwrap();
    assert!(report.tps() > 0.0);
    // Some page somewhere must have at least two retrievable versions.
    let ssd = fs.device();
    let mut deep = 0;
    for lpa in 0..ssd.exported_pages() {
        if ssd.version_chain(Lpa(lpa)).len() >= 2 {
            deep += 1;
        }
    }
    assert!(deep > 0, "no page accumulated history during PostMark");
}

#[test]
fn oltp_runs_on_all_three_stacks() {
    // Ext4-journal and F2FS on regular SSD, Ext4-nj on TimeSSD: the
    // Figure 9 configurations all execute the same transactions.
    let tps = |mode, timessd: bool| {
        let cfg = SsdConfig::new(Geometry::medium_test());
        if timessd {
            let mut fs = AlmanacFs::new(TimeSsd::new(cfg), mode).unwrap();
            let (mut e, t) = OltpEngine::setup(&mut fs, 2, 16, 9, 0).unwrap();
            e.run(OltpMix::Tpcb, 50, t).unwrap().tps()
        } else {
            let mut fs = AlmanacFs::new(RegularSsd::new(cfg), mode).unwrap();
            let (mut e, t) = OltpEngine::setup(&mut fs, 2, 16, 9, 0).unwrap();
            e.run(OltpMix::Tpcb, 50, t).unwrap().tps()
        }
    };
    let ext4 = tps(FsMode::Ext4DataJournal, false);
    let f2fs = tps(FsMode::F2fsLog, false);
    let timessd = tps(FsMode::Ext4NoJournal, true);
    assert!(timessd > ext4, "TimeSSD {timessd} should beat Ext4 {ext4}");
    assert!(f2fs > ext4, "F2FS {f2fs} should beat Ext4 {f2fs}");
}

#[test]
fn trace_replay_on_both_devices_is_consistent() {
    let profile = profiles::profile_by_name("webusers").unwrap();
    let trace = profile.generate(1, 4096, 3);
    let mut regular = RegularSsd::new(SsdConfig::new(Geometry::medium_test()));
    let mut timessd = medium_timessd();
    let r = replay(&trace, &mut regular).unwrap();
    let t = replay(&trace, &mut timessd).unwrap();
    // Same workload, same host-visible operation counts.
    assert_eq!(r.user_writes, t.user_writes);
    assert_eq!(r.user_reads, t.user_reads);
    assert!(!r.stalled && !t.stalled);
}

#[test]
fn attack_then_full_rollback_restores_plaintext() {
    let mut fs = AlmanacFs::new(medium_timessd(), FsMode::Ext4NoJournal).unwrap();
    let family = Family {
        name: "test-overwriter",
        victim_mib: 1,
        rate_mib_s: 8.0,
        deletes_originals: false,
    };
    let report = attack(&mut fs, family, 77, 0).unwrap();
    // Roll every victim page back.
    let pages: Vec<Lpa> = report
        .victims
        .iter()
        .flat_map(|v| v.lpas.iter().copied())
        .collect();
    let mut kits = TimeKits::new(fs.device_mut());
    let out = kits
        .roll_back_set(&pages, report.pre_attack_time, report.attack_end)
        .unwrap();
    assert_eq!(out.restored.len(), pages.len());
    // Every victim file reads as its original plaintext again.
    for (i, victim) in report.victims.iter().enumerate() {
        let (data, _) = fs
            .read(victim.fid, 0, victim.size, out.finish + i as u64 + SEC_NS)
            .unwrap();
        assert!(
            String::from_utf8_lossy(&data[..64]).is_ascii(),
            "file {i} still looks encrypted"
        );
    }
}

#[test]
fn device_timeline_is_tamper_evident() {
    // Host-level deletion (trim) cannot remove history: the firmware keeps
    // the versions and the time-based query still shows the activity.
    let mut ssd = medium_timessd();
    ssd.write(Lpa(5), PageData::bytes(b"evidence".to_vec()), SEC_NS)
        .unwrap();
    ssd.trim(Lpa(5), 2 * SEC_NS).unwrap();
    let kits = TimeKits::new(&mut ssd);
    let (hits, _) = kits.time_query_all();
    assert!(hits.iter().any(|h| h.lpa == Lpa(5)));
    let versions = kits.query(Lpa(5), 1).all_versions().run().unwrap();
    assert_eq!(versions.hits.len(), 1);
    assert_eq!(versions.hits[0].data, PageData::bytes(b"evidence".to_vec()));
}
