//! Determinism and reproducibility tests: the whole simulation stack must
//! be a pure function of its seeds.

use almanac::core::{SsdConfig, TimeSsd};
use almanac::flash::Geometry;
use almanac::fs::{AlmanacFs, FsMode};
use almanac::trace::replay;
use almanac::workloads::postmark::{self, PostmarkConfig};
use almanac::workloads::profiles;

#[test]
fn trace_replay_is_deterministic() {
    let profile = profiles::profile_by_name("rsrch").unwrap();
    let run = || {
        let trace = profile.generate(1, 4096, 11);
        let mut ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        replay(&trace, &mut ssd).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn postmark_is_deterministic() {
    let run = || {
        let ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
        let mut fs = AlmanacFs::new(ssd, FsMode::Ext4NoJournal).unwrap();
        let r = postmark::run(
            &mut fs,
            PostmarkConfig {
                initial_files: 10,
                transactions: 100,
                ..Default::default()
            },
            21,
            0,
        )
        .unwrap();
        (r.transactions, r.elapsed, r.bytes_written)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let profile = profiles::profile_by_name("hm").unwrap();
    let a = profile.generate(1, 4096, 1);
    let b = profile.generate(1, 4096, 2);
    assert_ne!(a.records, b.records);
}
