//! Whole-stack pipelines: KV store → evidence export → consistency audit,
//! and the NVMe wire path over a device shared with file-system traffic.

use almanac::core::{SsdConfig, SsdDevice, TimeSsd};
use almanac::flash::{Geometry, Lpa, SEC_NS};
use almanac::fs::{AlmanacFs, FsMode};
use almanac::kits::{EvidenceArchive, TimeKits};
use almanac::nvme::{HostDriver, NvmeController};
use almanac::workloads::kvstore::{KvStore, YcsbMix};

#[test]
fn kv_store_history_evidence_and_audit() {
    let ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
    let mut fs = AlmanacFs::new(ssd, FsMode::Ext4NoJournal).unwrap();
    let (mut kv, t) = KvStore::open(&mut fs, 11, 0).unwrap();
    let report = kv.run_ycsb(YcsbMix::A, 60, 200, t).unwrap();
    assert!(report.ops_per_sec() > 0.0);
    assert_eq!(kv.len(), 60);

    // Export the full evidence archive and verify its integrity trailer.
    let kits = TimeKits::new(fs.device_mut());
    let archive = kits.export_evidence(0, u64::MAX).unwrap();
    assert!(!archive.records.is_empty());
    let text = archive.to_text();
    assert_eq!(
        EvidenceArchive::verify_text(&text),
        Some(archive.records.len())
    );

    // The device's internal invariants must hold after all of it.
    let audit = fs.device().check_consistency();
    assert!(audit.is_clean(), "{:?}", audit.violations);
}

#[test]
fn nvme_rollback_all_through_the_wire() {
    let ssd = TimeSsd::new(SsdConfig::new(Geometry::medium_test()));
    let mut driver = HostDriver::new(NvmeController::new(ssd));
    // Two generations of eight pages.
    for round in 0..2u64 {
        for lpa in 0..8u64 {
            driver
                .write(
                    Lpa(lpa),
                    format!("round {round} page {lpa}").into_bytes(),
                    (1 + round * 10 + lpa) * SEC_NS,
                )
                .unwrap();
        }
    }
    // Roll everything back to the end of round 0.
    let restored = driver.roll_back_all(9 * SEC_NS, 60 * SEC_NS).unwrap();
    assert_eq!(restored, 8);
    for lpa in 0..8u64 {
        let page = driver.read(Lpa(lpa), 120 * SEC_NS).unwrap();
        let expect = format!("round 0 page {lpa}");
        assert_eq!(&page[..expect.len()], expect.as_bytes());
    }
}

#[test]
fn retention_key_device_serves_io_normally() {
    // §3.10 encryption must be invisible to normal operation.
    let cfg = SsdConfig::new(Geometry::medium_test()).with_retention_key(0x5EC2E7);
    let mut ssd = TimeSsd::new(cfg);
    for i in 0..50u64 {
        ssd.write(
            Lpa(i % 10),
            almanac::flash::PageData::bytes(format!("v{i}").into_bytes()),
            (i + 1) * SEC_NS,
        )
        .unwrap();
    }
    let (data, _) = ssd.read(Lpa(3), 100 * SEC_NS).unwrap();
    assert_eq!(&data.materialize(3), b"v43");
    assert!(ssd.check_consistency().is_clean());
}
