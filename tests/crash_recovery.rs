//! Crash-recovery sweep for TimeSSD (§3.7–3.8 power-loss path).
//!
//! A scripted, seed-deterministic workload drives the device while a golden
//! (fault-free) run records which flash-op windows contained GC erases,
//! delta-page programs, and Bloom-filter rotations. The sweep then replays
//! the same script against fresh devices whose `FaultPlan` cuts power at an
//! exact flash-op index inside those windows — so cuts land mid-GC
//! migration, mid-delta-coalesce, mid-filter-rotation, and (in a dedicated
//! sweep) on both sides of the trim-journal program, plus evenly spaced
//! generic points — and for every cut asserts:
//!
//! - the dead device hands back only its flash (`into_flash`), which is
//!   revived and rebuilt through `TimeSsd::recover_from_flash`;
//! - every version that was on flash at the instant of the cut (everything
//!   the dead device's own index could reach, minus volatile delta buffers)
//!   is still reachable on the rebuilt device, with byte-identical content,
//!   via the version chain, `AddrQuery`, and `TimeQuery` (a durable trim
//!   tombstone newer than the version legitimately hides it from
//!   `AddrQuery`'s current-state view — the history stays behind it);
//! - the rebuilt device passes the `check_consistency` audit and keeps
//!   serving writes;
//! - the same fault seed reproduces byte-identical flash state
//!   (`state_digest`) across runs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use almanac_core::{AlmanacError, SsdConfig, SsdDevice, SsdReadOps, TimeSsd, VersionLocation};
use almanac_flash::{FaultPlan, FlashError, Geometry, Lpa, Nanos, PageData};
use almanac_kits::TimeKits;

const FAULT_SEED: u64 = 0x0fa1_7001;
/// Virtual-time gap between host ops; long enough for some idle compression.
const OP_GAP: Nanos = 50_000;

fn base_config() -> SsdConfig {
    let mut cfg = SsdConfig::new(Geometry::medium_test());
    // Small filters force rotations within the scripted workload.
    cfg.bloom.capacity = 512;
    cfg
}

/// Strict-mode config: a watermark of 1 flushes the trim journal on every
/// trim, restoring the per-trim durability the trim-ack sweep asserts.
fn strict_config() -> SsdConfig {
    base_config().with_trim_journal_watermark(1)
}

#[derive(Debug, Clone, Copy)]
enum HostOp {
    Write(Lpa, u64),
    Trim(Lpa),
    Flush,
}

/// The scripted workload: six rounds of round-robin overwrites over a third
/// of the exported space — steady pressure that triggers GC, delta
/// compression, and filter rotations without stalling the §3.4 retention
/// guarantee — plus periodic trims. Fully deterministic.
fn script(cfg: &SsdConfig) -> Vec<HostOp> {
    let set = cfg.exported_pages() / 3;
    let mut version = 1u64;
    let mut ops = Vec::with_capacity((set * 6) as usize);
    for i in 0..set * 6 {
        if i % 29 == 17 {
            ops.push(HostOp::Trim(Lpa((i * 7) % set)));
        } else {
            ops.push(HostOp::Write(Lpa(i % set), version));
            version += 1;
        }
    }
    ops
}

fn content(lpa: Lpa, version: u64) -> PageData {
    PageData::Synthetic {
        seed: lpa.0,
        version,
    }
}

/// Host-side ground truth accumulated during a replay: every acknowledged
/// write keyed by its device timestamp, and each LPA's latest state.
#[derive(Default)]
struct Model {
    committed: BTreeMap<(u64, Nanos), u64>,
    latest: BTreeMap<u64, Option<u64>>, // None = trimmed
}

/// One host op's span in the flash-op sequence, from the golden run.
#[derive(Debug, Clone, Copy)]
struct OpWindow {
    before: u64,
    after: u64,
    gc: bool,
    delta: bool,
    rotation: bool,
}

enum RunEnd {
    Completed(TimeSsd),
    Cut(TimeSsd),
}

/// Replays the script. A fault-free config completes; a config whose plan
/// cuts power returns the dead device at the first `PowerLoss`.
fn run(cfg: SsdConfig, ops: &[HostOp]) -> (RunEnd, Model, Vec<OpWindow>) {
    let mut ssd = TimeSsd::new(cfg);
    let mut model = Model::default();
    let mut windows = Vec::with_capacity(ops.len());
    let mut now = OP_GAP;
    for op in ops {
        let before = ssd.flash().ops_issued();
        let gc0 = ssd.stats().gc_erases;
        let delta0 = ssd.stats().delta_programs;
        let filters0 = ssd.live_filters();
        let result = match *op {
            HostOp::Write(lpa, version) => {
                ssd.write(lpa, content(lpa, version), now).inspect(|c| {
                    model.committed.insert((lpa.0, c.start), version);
                    model.latest.insert(lpa.0, Some(version));
                })
            }
            HostOp::Trim(lpa) => ssd.trim(lpa, now).inspect(|_| {
                model.latest.insert(lpa.0, None);
            }),
            HostOp::Flush => ssd.flush(now),
        };
        match result {
            Ok(c) => now = c.finish + OP_GAP,
            Err(AlmanacError::Flash(FlashError::PowerLoss)) => {
                return (RunEnd::Cut(ssd), model, windows);
            }
            Err(e) => panic!("unexpected device error: {e}"),
        }
        windows.push(OpWindow {
            before,
            after: ssd.flash().ops_issued(),
            gc: ssd.stats().gc_erases > gc0,
            delta: ssd.stats().delta_programs > delta0,
            rotation: ssd.live_filters() != filters0,
        });
    }
    (RunEnd::Completed(ssd), model, windows)
}

/// Picks the sweep's cut points from the golden run: up to three mid-GC,
/// three mid-delta-write, and two mid-rotation cuts (midpoint of the host
/// op's flash-op span), topped up with evenly spaced generic points.
fn pick_cut_points(windows: &[OpWindow]) -> Vec<u64> {
    let mut cuts = BTreeSet::new();
    let mid = |w: &OpWindow| (w.before + w.after) / 2;
    for (flag, quota) in [(0, 3usize), (1, 3), (2, 2)] {
        let mut taken = 0;
        for w in windows {
            let hit = match flag {
                0 => w.gc,
                1 => w.delta,
                _ => w.rotation,
            };
            if hit && w.after > w.before && taken < quota {
                cuts.insert(mid(w));
                taken += 1;
            }
        }
        assert!(
            taken > 0,
            "golden run produced no window for category {flag} (0=gc, 1=delta, 2=rotation); \
             the workload must cover all three"
        );
    }
    let total = windows.last().expect("non-empty script").after;
    let mut k = 1;
    while cuts.len() < 8 && k <= 16 {
        cuts.insert(total * k / 17);
        k += 1;
    }
    assert!(cuts.len() >= 8, "sweep needs at least 8 cut points");
    cuts.into_iter().collect()
}

fn cut_config(cut: u64) -> SsdConfig {
    base_config().with_fault_plan(FaultPlan::new(FAULT_SEED).with_power_cut_at(cut))
}

/// Everything the dead device's index can still reach on flash. Versions in
/// volatile delta buffers are legitimately lost with the cut and excluded.
fn surviving_versions(ssd: &TimeSsd, exported: u64) -> Vec<(Lpa, Nanos, PageData)> {
    let mut out = Vec::new();
    for l in 0..exported {
        let lpa = Lpa(l);
        for v in ssd.version_chain(lpa) {
            if matches!(v.location, VersionLocation::BufferedDelta(_)) {
                continue;
            }
            let data = ssd
                .version_content(lpa, v.timestamp)
                .unwrap_or_else(|e| panic!("dead device cannot decode L{l}@{}: {e}", v.timestamp));
            out.push((lpa, v.timestamp, data));
        }
    }
    out
}

/// Runs one cut end-to-end and returns `(dead flash digest, survivor count)`
/// so callers can assert cross-run determinism.
fn check_cut(cut: u64, ops: &[HostOp]) -> (u64, usize) {
    let (end, model, _) = run(cut_config(cut), ops);
    let RunEnd::Cut(dead) = end else {
        panic!("cut at op {cut} never fired");
    };
    let exported = dead.exported_pages();
    let survivors = surviving_versions(&dead, exported);
    let digest = dead.flash().state_digest();

    // §3.7: power restored, RAM gone, device rebuilt from the flash scan.
    let mut flash = dead.into_flash();
    assert!(flash.powered_off());
    flash.revive();
    let mut rebuilt = TimeSsd::recover_from_flash(flash, base_config());

    let audit = rebuilt.check_consistency();
    assert!(
        audit.is_clean(),
        "cut {cut}: rebuilt device failed consistency audit: {:?}",
        audit.violations
    );

    for (lpa, ts, ref data) in &survivors {
        let chain = rebuilt.version_chain(*lpa);
        assert!(
            chain.iter().any(|v| v.timestamp == *ts),
            "cut {cut}: {lpa}@{ts} was on flash before the cut but is unreachable after rebuild"
        );
        let got = rebuilt
            .version_content(*lpa, *ts)
            .unwrap_or_else(|e| panic!("cut {cut}: {lpa}@{ts} unreadable after rebuild: {e}"));
        assert_eq!(&got, data, "cut {cut}: {lpa}@{ts} content diverged");
        // Where the host model knows this version, the device agrees with it.
        if let Some(version) = model.committed.get(&(lpa.0, *ts)) {
            assert_eq!(
                &got,
                &content(*lpa, *version),
                "cut {cut}: {lpa}@{ts} does not match the acknowledged write"
            );
        }
    }

    // The host-facing query kits see the same history: AddrQuery over the
    // whole device and a full-range TimeQuery must cover every survivor.
    let survivor_count = survivors.len();
    {
        let kits = TimeKits::new(&mut rebuilt);
        let out = kits
            .query(Lpa(0), exported)
            .as_of(Nanos::MAX)
            .run()
            .expect("AddrQuery over rebuilt device");
        let heads: BTreeMap<u64, Nanos> = out.hits.iter().map(|h| (h.lpa.0, h.timestamp)).collect();
        let (time_hits, _) = kits.time_query(0);
        let mut stamps: BTreeMap<u64, BTreeSet<Nanos>> = BTreeMap::new();
        for h in &time_hits {
            stamps.entry(h.lpa.0).or_default().extend(&h.timestamps);
        }
        for (lpa, ts, _) in &survivors {
            assert!(
                stamps.get(&lpa.0).is_some_and(|s| s.contains(ts)),
                "cut {cut}: TimeQuery missed surviving {lpa}@{ts}"
            );
            // A durable trim tombstone newer than the version is the one
            // legitimate reason for AddrQuery to report no current state:
            // the page was deleted, its history retained behind the
            // tombstone (§3.7 crash contract).
            let tombstoned = kits.ssd().trimmed_at(*lpa).is_some_and(|t| t > *ts);
            assert!(
                tombstoned || heads.get(&lpa.0).is_some_and(|head| head >= ts),
                "cut {cut}: AddrQuery head older than surviving {lpa}@{ts}"
            );
        }
    }

    // And the rebuilt device still takes writes.
    let t = rebuilt
        .write(
            Lpa(0),
            PageData::bytes(b"post-crash".to_vec()),
            u64::MAX / 4,
        )
        .expect("rebuilt device must serve writes");
    let (data, _) = rebuilt.read(Lpa(0), t.finish + 1).unwrap();
    assert_eq!(data, PageData::bytes(b"post-crash".to_vec()));

    (digest, survivor_count)
}

#[test]
fn golden_run_covers_all_fault_windows() {
    let cfg = base_config();
    let ops = script(&cfg);
    let (end, model, windows) = run(cfg, &ops);
    let RunEnd::Completed(ssd) = end else {
        panic!("fault-free run must complete");
    };
    assert!(ssd.stats().gc_erases > 0, "workload never triggered GC");
    assert!(
        ssd.stats().delta_programs > 0,
        "workload never wrote a delta page"
    );
    assert!(
        windows.iter().any(|w| w.rotation),
        "workload never rotated a Bloom filter"
    );
    assert!(!model.committed.is_empty());
}

#[test]
fn power_cut_sweep_recovers_every_committed_version() {
    let cfg = base_config();
    let ops = script(&cfg);
    let (_, _, windows) = run(cfg, &ops);
    let cuts = pick_cut_points(&windows);
    for &cut in &cuts {
        check_cut(cut, &ops);
    }
}

#[test]
fn same_fault_seed_reproduces_byte_identical_state() {
    let cfg = base_config();
    let ops = script(&cfg);
    let (_, _, windows) = run(cfg, &ops);
    // A mid-GC window is the most internally complex cut; prove even that
    // one is bit-for-bit reproducible.
    let w = windows.iter().find(|w| w.gc).expect("workload triggers GC");
    let cut = (w.before + w.after) / 2;
    let (digest_a, survivors_a) = check_cut(cut, &ops);
    let (digest_b, survivors_b) = check_cut(cut, &ops);
    assert_eq!(digest_a, digest_b, "flash state diverged between runs");
    assert_eq!(survivors_a, survivors_b);
}

/// Cut points bracketing the §3.7 trim-journal write path, in strict mode
/// (`trim_journal_watermark == 1`, the pre-batching behaviour): a trim of a
/// mapped LPA journals a durable TRIM record (and flushes it) *before* any
/// RAM state changes, so the crash contract is exact:
///
/// - cut before any of the trim's flash ops, or killing the journal program
///   itself → the trim was never acknowledged, and the rebuilt device must
///   resurrect the pre-trim state (the last acknowledged write);
/// - cut after the trim's last flash op → the trim was acknowledged, and
///   the rebuilt device must keep the tombstone: unmapped, `trimmed_at`
///   set, reads as zeros.
///
/// Either way the expected state is exactly the cut run's own model of the
/// last acknowledged op on that LPA.
#[test]
fn trim_journal_cut_points_enforce_acknowledged_trim_state() {
    let cfg = strict_config();
    let ops = script(&cfg);
    let (_, _, windows) = run(cfg, &ops);

    let mut acked_tombstones = 0;
    let mut unacked_trims = 0;
    let mut picked = 0;
    for (i, w) in windows.iter().enumerate() {
        let HostOp::Trim(lpa) = ops[i] else { continue };
        // Only journaled trims: the window's delta program is the journal
        // flush (a trim of an unmapped LPA touches no flash).
        if !w.delta || w.after <= w.before {
            continue;
        }
        if picked == 4 {
            break;
        }
        picked += 1;

        // Three cuts: before the trim's first flash op, on its last flash
        // op (the journal program dies), and right after the ack.
        for cut in [w.before, w.after - 1, w.after] {
            if cut == 0 {
                continue;
            }
            let (end, model, cut_windows) = run(
                strict_config().with_fault_plan(FaultPlan::new(FAULT_SEED).with_power_cut_at(cut)),
                &ops,
            );
            let RunEnd::Cut(dead) = end else {
                panic!("cut at flash op {cut} never fired");
            };
            // The op that hit the cut was never acknowledged; if it is a
            // *later* op touching the same LPA, it may or may not have
            // reached flash and the expected state is ambiguous — skip.
            let dying = cut_windows.len();
            let unrelated_collision = dying != i
                && matches!(
                    ops.get(dying),
                    Some(HostOp::Write(l, _) | HostOp::Trim(l)) if *l == lpa
                );
            if unrelated_collision {
                continue;
            }

            let mut flash = dead.into_flash();
            flash.revive();
            let mut rebuilt = TimeSsd::recover_from_flash(flash, strict_config());
            let audit = rebuilt.check_consistency();
            assert!(
                audit.is_clean(),
                "trim cut {cut}: rebuilt device failed audit: {:?}",
                audit.violations
            );

            match model.latest.get(&lpa.0) {
                Some(Some(version)) => {
                    // Last acknowledged op was a write: the trim must not
                    // have applied.
                    unacked_trims += 1;
                    assert!(
                        rebuilt.is_mapped(lpa),
                        "trim cut {cut}: unacknowledged trim of {lpa} stuck"
                    );
                    let (data, _) = rebuilt.read(lpa, u64::MAX / 4).unwrap();
                    assert_eq!(
                        data,
                        content(lpa, *version),
                        "trim cut {cut}: {lpa} lost its pre-trim content"
                    );
                }
                Some(None) => {
                    // Last acknowledged op was a trim: the journaled
                    // tombstone must have survived the cut.
                    acked_tombstones += 1;
                    assert!(
                        !rebuilt.is_mapped(lpa),
                        "trim cut {cut}: acknowledged trim of {lpa} resurrected"
                    );
                    assert!(
                        rebuilt.trimmed_at(lpa).is_some(),
                        "trim cut {cut}: {lpa} tombstone lost in rebuild"
                    );
                    let (data, _) = rebuilt.read(lpa, u64::MAX / 4).unwrap();
                    assert_eq!(
                        data,
                        PageData::Zeros,
                        "trim cut {cut}: trimmed {lpa} reads stale data"
                    );
                }
                None => {
                    // Never acknowledged anything for this LPA.
                    assert!(!rebuilt.is_mapped(lpa));
                }
            }
        }
    }
    assert!(picked >= 2, "script journaled too few trims to sweep");
    assert!(
        acked_tombstones > 0 && unacked_trims > 0,
        "sweep must exercise both sides of the trim ack boundary \
         (acked {acked_tombstones}, unacked {unacked_trims})"
    );
}

/// A scripted workload with explicit flush barriers: rounds of writes plus
/// a few trims (below the journal watermark, so their tombstones sit in
/// RAM) closed by a `flush`. Every flush is followed by writes, so a cut
/// right after the barrier's last flash op kills the *next* host op and the
/// model state at the cut is exactly the state the barrier acknowledged.
fn barrier_script(cfg: &SsdConfig) -> Vec<HostOp> {
    let set = cfg.exported_pages() / 4;
    let mut version = 1u64;
    let mut ops = Vec::new();
    for r in 0..4u64 {
        for i in 0..36 {
            ops.push(HostOp::Write(Lpa((r * 7 + i) % set), version));
            version += 1;
        }
        for j in 0..3 {
            ops.push(HostOp::Trim(Lpa((r * 7 + j) % set)));
        }
        ops.push(HostOp::Flush);
    }
    // Tail writes so even the last flush has a successor op to die in.
    for i in 0..8 {
        ops.push(HostOp::Write(Lpa(i % set), version + i));
    }
    ops
}

/// Cut points bracketing the flush barrier's flash-op window under the
/// *batched* tombstone journal (default watermark — acked trims are
/// volatile between barriers):
///
/// - cut before the flush's first flash op, or killing its last program →
///   the barrier was never acknowledged, so no new durability was promised;
///   the rebuilt device must still pass the audit and keep serving I/O;
/// - cut immediately after the ack (the next host op's first flash op
///   dies) → zero waivers: the rebuilt device must reproduce the acked
///   state exactly — every acked write mapped with its content, every
///   acked trim tombstoned, nothing resurrected.
#[test]
fn flush_barrier_cut_points_make_acked_state_durable() {
    let cfg = base_config();
    let ops = barrier_script(&cfg);
    let (end, _, windows) = run(cfg, &ops);
    assert!(
        matches!(end, RunEnd::Completed(_)),
        "golden run must complete"
    );

    let mut acked_cuts = 0;
    let mut unacked_cuts = 0;
    let mut durable_tombstones = 0;
    for (i, w) in windows.iter().enumerate() {
        let HostOp::Flush = ops[i] else { continue };
        // A barrier with nothing buffered programs no flash; the sweep
        // wants barriers that actually move tombstones to flash.
        if w.after <= w.before {
            continue;
        }
        for cut in [w.before, w.after - 1, w.after] {
            if cut == 0 {
                continue;
            }
            let (end, model, cut_windows) = run(cut_config(cut), &ops);
            let RunEnd::Cut(dead) = end else {
                panic!("cut at flash op {cut} never fired");
            };
            let dying = cut_windows.len();
            let mut flash = dead.into_flash();
            flash.revive();
            let mut rebuilt = TimeSsd::recover_from_flash(flash, base_config());
            let audit = rebuilt.check_consistency();
            assert!(
                audit.is_clean(),
                "barrier cut {cut}: rebuilt device failed audit: {:?}",
                audit.violations
            );

            if cut == w.after && dying == i + 1 {
                // The barrier was acknowledged and nothing later reached
                // flash: the acked state must be reproduced verbatim.
                acked_cuts += 1;
                for (&lpa, state) in &model.latest {
                    let lpa = Lpa(lpa);
                    match state {
                        Some(version) => {
                            assert!(
                                rebuilt.is_mapped(lpa),
                                "barrier cut {cut}: acked write of {lpa} lost"
                            );
                            let (data, _) = rebuilt.read(lpa, u64::MAX / 4).unwrap();
                            assert_eq!(
                                data,
                                content(lpa, *version),
                                "barrier cut {cut}: {lpa} lost its barriered content"
                            );
                        }
                        None => {
                            durable_tombstones += 1;
                            assert!(
                                !rebuilt.is_mapped(lpa),
                                "barrier cut {cut}: barriered trim of {lpa} resurrected"
                            );
                            assert!(
                                rebuilt.trimmed_at(lpa).is_some(),
                                "barrier cut {cut}: {lpa} tombstone lost despite the barrier"
                            );
                            let (data, _) = rebuilt.read(lpa, u64::MAX / 4).unwrap();
                            assert_eq!(data, PageData::Zeros);
                        }
                    }
                }
            } else {
                // Mid-barrier (or pre-barrier) cut: the flush never acked,
                // so batched tombstones may be gone — only liveness and
                // internal consistency are demanded.
                unacked_cuts += 1;
                let t = rebuilt
                    .write(Lpa(0), PageData::bytes(b"post-cut".to_vec()), u64::MAX / 4)
                    .expect("rebuilt device must serve writes");
                let (data, _) = rebuilt.read(Lpa(0), t.finish + 1).unwrap();
                assert_eq!(data, PageData::bytes(b"post-cut".to_vec()));
            }
        }
    }
    assert!(
        acked_cuts > 0 && unacked_cuts > 0,
        "sweep must land on both sides of the barrier ack \
         (acked {acked_cuts}, unacked {unacked_cuts})"
    );
    assert!(
        durable_tombstones > 0,
        "no acked-barrier cut covered a batched tombstone"
    );
}

#[test]
fn power_loss_surfaces_as_error_not_panic() {
    let cfg = base_config().with_fault_plan(FaultPlan::new(1).with_power_cut_at(0));
    let mut ssd = TimeSsd::new(cfg);
    let err = ssd
        .write(Lpa(0), content(Lpa(0), 1), OP_GAP)
        .expect_err("first flash op is past the cut");
    assert!(matches!(err, AlmanacError::Flash(FlashError::PowerLoss)));
}

#[test]
fn injected_op_faults_propagate_through_the_ftl() {
    // Fail the very first program: the user write must surface the injected
    // error, and the device must stay alive for the retry.
    let cfg = base_config().with_fault_plan(FaultPlan::new(2).with_program_fault(0));
    let mut ssd = TimeSsd::new(cfg);
    let err = ssd
        .write(Lpa(3), content(Lpa(3), 1), OP_GAP)
        .expect_err("program fault must propagate");
    assert!(matches!(
        err,
        AlmanacError::Flash(FlashError::Injected { .. })
    ));
    // Retry succeeds (the fault was one-shot) and the data is intact.
    let c = ssd.write(Lpa(3), content(Lpa(3), 1), 2 * OP_GAP).unwrap();
    let (data, _) = ssd.read(Lpa(3), c.finish + 1).unwrap();
    assert_eq!(data, content(Lpa(3), 1));
}

#[test]
fn oob_bitrot_degrades_to_partial_history_not_wrong_data() {
    // 6% of pages return corrupted OOB metadata. The device must keep
    // running (GC and chain walks included), never panic, and never present
    // content under a version label the host committed with different data.
    let cfg = base_config().with_fault_plan(FaultPlan::new(FAULT_SEED).with_oob_rot(60));
    let ops = script(&cfg);
    let (end, model, _) = run(cfg, &ops);
    let RunEnd::Completed(ssd) = end else {
        panic!("bit-rot must not kill the device");
    };
    // The audit may report violations (that is the point); it must complete.
    let _ = ssd.check_consistency();
    let exported = ssd.exported_pages();
    for l in 0..exported {
        let lpa = Lpa(l);
        for v in ssd.version_chain(lpa) {
            // Chains must stay well-ordered even when rot truncates them.
            let Ok(data) = ssd.version_content(lpa, v.timestamp) else {
                continue; // Err is graceful degradation, accepted.
            };
            if let Some(version) = model.committed.get(&(l, v.timestamp)) {
                assert_eq!(
                    data,
                    content(lpa, *version),
                    "rot returned wrong data for {lpa}@{}",
                    v.timestamp
                );
            }
            if v.is_head {
                if let Some(Some(latest)) = model.latest.get(&l) {
                    assert_eq!(
                        data,
                        content(lpa, *latest),
                        "rot corrupted the current content of {lpa}"
                    );
                }
            }
        }
    }
    // A rebuild over rotted flash also degrades gracefully: no panic, and
    // the device still serves I/O.
    let rotted = ssd.into_flash();
    let mut rebuilt = TimeSsd::recover_from_flash(rotted, base_config());
    let _ = rebuilt.check_consistency();
    let t = rebuilt
        .write(Lpa(1), PageData::bytes(b"after-rot".to_vec()), u64::MAX / 4)
        .expect("rebuilt-from-rot device must serve writes");
    let (data, _) = rebuilt.read(Lpa(1), t.finish + 1).unwrap();
    assert_eq!(data, PageData::bytes(b"after-rot".to_vec()));
}
