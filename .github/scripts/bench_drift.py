#!/usr/bin/env python3
"""Bench-drift gate: compare a fresh BENCH_*.json against the committed
baseline.

Usage: bench_drift.py BASELINE.json FRESH.json

Compares total wall-clock time and per-figure wall times. The two reports
must have been produced with the same `fast` flag and worker count to be
comparable; otherwise the gate warns and exits 0 (nothing honest to
compare). A total regression beyond 2x fails the job; anything smaller is
reported as a warning only, since CI runners vary.

Stdlib only — the repository builds offline.
"""

import json
import sys

FAIL_RATIO = 2.0
WARN_RATIO = 1.25


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    baseline, fresh = load(sys.argv[1]), load(sys.argv[2])

    for key in ("fast", "jobs"):
        if baseline.get(key) != fresh.get(key):
            print(
                f"bench-drift: baseline {key}={baseline.get(key)!r} vs "
                f"fresh {key}={fresh.get(key)!r}; runs are not comparable, skipping gate"
            )
            return 0

    base_total = float(baseline["total_wall_ms"])
    fresh_total = float(fresh["total_wall_ms"])
    if base_total <= 0:
        print("bench-drift: baseline total is zero, skipping gate")
        return 0
    ratio = fresh_total / base_total
    print(
        f"bench-drift: total {fresh_total:.0f} ms vs baseline "
        f"{base_total:.0f} ms ({ratio:.2f}x)"
    )

    base_figs = {f["name"]: float(f["wall_ms"]) for f in baseline.get("figures", [])}
    for fig in fresh.get("figures", []):
        name, wall = fig["name"], float(fig["wall_ms"])
        base = base_figs.get(name)
        if base and base > 0:
            r = wall / base
            marker = " <-- regression" if r > FAIL_RATIO else ""
            print(f"  {name}: {wall:.0f} ms vs {base:.0f} ms ({r:.2f}x){marker}")
        else:
            print(f"  {name}: {wall:.0f} ms (no baseline figure)")

    if ratio > FAIL_RATIO:
        print(f"bench-drift: FAIL — total wall time regressed beyond {FAIL_RATIO}x")
        return 1
    if ratio > WARN_RATIO:
        print(f"bench-drift: warning — total wall time above {WARN_RATIO}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
